"""The online matching engine (safe under concurrent callers).

Request lifecycle::

    match request (pair of descriptions)
      → normalize + render prompt
      → ResultCache lookup  ──hit──→ answer
      → in-flight dedup (identical prompts share one backend slot,
        across threads as well as within one call)
      → Scheduler (micro-batch: flush on size / deadline / drain)
      → Backend.generate under RetryPolicy + CircuitBreaker
          ──exhausted / circuit open──→ threshold-baseline fallback
      → parse answer, fill cache, resolve waiters, update EngineStats

The engine accepts ad-hoc description pairs, labelled
:class:`~repro.datasets.schema.EntityPair` objects, whole splits, and
candidate streams from :mod:`repro.blocking`.  Descriptions taken from
``EntityPair`` objects are used verbatim (so the engine path is
bit-identical to the evaluator's sequential path); raw string input is
whitespace-normalized first, since online callers send unsanitized text.

Thread-safety model: :meth:`MatchingEngine.match_pairs` may be called
from any number of threads.  One re-entrant engine lock guards the
scheduler and the in-flight table (both cheap, pure-data operations);
the cache, stats, and circuit breaker carry their own locks.  Backend
dispatch — the only blocking work — always happens *outside* every lock:
a flushed batch is handed to whichever thread triggered the flush, and
other threads waiting on a prompt in that batch block on the pending
slot's event, not on a lock.  Each caller drains the scheduler before
waiting, so every submitted prompt is guaranteed to be dispatched by
someone.  The ``@guarded_by`` declarations below are enforced by
``repro-em lint --deep``.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Annotated, Callable, Iterable, Sequence

import numpy as np

from repro.baselines.threshold import ThresholdMatcher
from repro.blocking.base import BlockingResult
from repro.concurrency import guarded_by
from repro.datasets.schema import EntityPair, Record, Split
from repro.engine.backends import Backend, make_backend
from repro.engine.cache import ResultCache
from repro.engine.retry import (
    BackendError,
    BackendTimeout,
    CircuitBreaker,
    CircuitOpenError,
    RetryPolicy,
    run_with_retry,
)
from repro.engine.scheduler import Batch, Scheduler
from repro.engine.stats import EngineStats
from repro.llm.model import ChatModel
from repro.llm.parsing import parse_yes_no
from repro.prompts.templates import DEFAULT_PROMPT, PromptTemplate

__all__ = ["MatchResult", "MatchingEngine"]


@dataclass(frozen=True)
class MatchResult:
    """The engine's answer for one candidate pair."""

    left: str
    right: str
    #: raw model completion (None when the answer came from the fallback).
    response: str | None
    #: parsed matching decision (unparseable answers count as non-matches).
    decision: bool
    #: where the answer came from: "backend", "cache", or "fallback".
    source: str


@dataclass
class _Pending:
    """One unique prompt's shared slot: submitted once, awaited by many.

    Mutable fields are written exactly once, by the dispatching thread,
    before ``event`` is set; waiters only read them after :meth:`wait`
    returns, so the event provides the necessary happens-before edge.
    ``claims`` counts the requests (across all threads) answered by this
    slot and is only touched under the engine lock.
    """

    key: str
    prompt: str
    left: str
    right: str
    event: threading.Event = field(default_factory=threading.Event)
    claims: int = 0
    response: str | None = None
    decision: bool = False
    source: str = ""

    def resolve(self, response: str | None, decision: bool, source: str) -> None:
        self.response = response
        self.decision = decision
        self.source = source
        self.event.set()

    def wait(self) -> None:
        self.event.wait()


class MatchingEngine:
    """Cache-, batch-, and failure-aware front end over a model backend."""

    #: unique prompt key → shared pending slot (dedup across threads).
    _in_flight: Annotated["dict[str, _Pending]", guarded_by("_lock")]
    #: micro-batching scheduler; pure data structure, engine-lock-guarded.
    scheduler: Annotated[Scheduler, guarded_by("_lock")]

    def __init__(
        self,
        backend: Backend,
        template: PromptTemplate = DEFAULT_PROMPT,
        cache: ResultCache | None = None,
        scheduler: Scheduler | None = None,
        retry: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
        fallback: ThresholdMatcher | None = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.backend = backend
        self.template = template
        self.cache = cache if cache is not None else ResultCache(clock=clock)
        self.scheduler = (
            scheduler if scheduler is not None else Scheduler(clock=clock)
        )
        self.retry = retry if retry is not None else RetryPolicy()
        self.breaker = breaker if breaker is not None else CircuitBreaker(clock=clock)
        #: degraded matcher used while the backend is unhealthy.  The
        #: default threshold is the uncalibrated 0.5 similarity cut — call
        #: ``fallback.fit(train_split)`` for a calibrated one.
        self.fallback = fallback if fallback is not None else ThresholdMatcher()
        self.stats = EngineStats()
        self._clock = clock
        self._sleep = sleep
        self._lock = threading.RLock()
        self._in_flight = {}

    # ------------------------------------------------------------ factories

    @classmethod
    def for_model(
        cls,
        model: ChatModel | str,
        template: PromptTemplate = DEFAULT_PROMPT,
        batch_size: int = 32,
        **kwargs,
    ) -> "MatchingEngine":
        """Engine over the paper-faithful backend for *model*.

        Open-source personas run through the local batched runner; hosted
        personas through the batch API (see :func:`make_backend`).
        """
        kwargs.setdefault("scheduler", Scheduler(max_batch_size=batch_size))
        return cls(
            backend=make_backend(model, batch_size=batch_size),
            template=template,
            **kwargs,
        )

    # ------------------------------------------------------------- matching

    def match_pair(self, left: str, right: str) -> MatchResult:
        """Match one ad-hoc pair of entity descriptions."""
        return self.match_pairs([(left, right)])[0]

    def match_pairs(
        self,
        pairs: Sequence[EntityPair | tuple[str, str]] | Iterable,
    ) -> list[MatchResult]:
        """Match every candidate pair, preserving input order.

        Safe to call from any number of threads concurrently.  Duplicate
        pairs (after normalization) are answered by a single backend
        request — within one call, across concurrent calls, and (via the
        cache) across sequential calls.
        """
        descriptions = [self._descriptions(p) for p in pairs]
        results: list[MatchResult | None] = [None] * len(descriptions)
        #: (input index, shared slot, left, right) awaiting a dispatch.
        claims: list[tuple[int, _Pending, str, str]] = []

        for i, (left, right) in enumerate(descriptions):
            self.stats.record_request()
            prompt = self.template.render(left, right)
            key = prompt
            cached = self.cache.get(key)
            if cached is not None:
                response, decision = cached
                self.stats.record_lookup(hit=True)
                results[i] = MatchResult(left, right, response, decision, "cache")
                continue
            self.stats.record_lookup(hit=False)
            batch = None
            created = False
            with self._lock:
                pending = self._in_flight.get(key)
                if pending is None:
                    created = True
                    pending = _Pending(key=key, prompt=prompt, left=left, right=right)
                    self._in_flight[key] = pending
                    batch = self.scheduler.submit(pending)
                    if batch is None:
                        batch = self.scheduler.poll()
                pending.claims += 1
            if not created:
                self.stats.record_dedup()
            claims.append((i, pending, left, right))
            if batch is not None:
                self._dispatch(batch)

        with self._lock:
            batch = self.scheduler.drain()
        if batch is not None:
            self._dispatch(batch)

        for i, pending, left, right in claims:
            pending.wait()
            results[i] = MatchResult(
                left, right, pending.response, pending.decision, pending.source
            )

        assert all(r is not None for r in results)
        return results  # type: ignore[return-value]

    def match_split(self, split: Split) -> list[MatchResult]:
        """Match every pair of a dataset split."""
        return self.match_pairs(split.pairs)

    def match_blocking(self, blocking: BlockingResult) -> list[MatchResult]:
        """Match the candidate stream produced by a blocker.

        Candidates are visited in sorted (left_index, right_index) order so
        runs are reproducible regardless of set iteration order.
        """
        pairs = [
            (blocking.left[i].description, blocking.right[j].description)
            for i, j in sorted(blocking.candidates)
        ]
        return self.match_pairs(pairs)

    def predict_split(self, split: Split) -> np.ndarray:
        """Boolean predictions for a split (the evaluator's engine path)."""
        return np.array(
            [r.decision for r in self.match_split(split)], dtype=bool
        )

    def reset_stats(self) -> None:
        self.stats = EngineStats()

    # ------------------------------------------------------------- internals

    @staticmethod
    def _descriptions(pair: EntityPair | tuple[str, str]) -> tuple[str, str]:
        """Left/right descriptions; raw strings are whitespace-normalized."""
        if isinstance(pair, EntityPair):
            return pair.left.description, pair.right.description
        left, right = pair
        return " ".join(left.split()), " ".join(right.split())

    def _retire(self, batch: Batch[_Pending]) -> list[int]:
        """Remove a dispatched batch from the in-flight table.

        Returns each item's claim count, frozen at removal: once an item
        leaves the table no further request can join it, so the counts are
        exact.  Later identical requests open a fresh slot (or hit the
        cache, when the dispatch succeeded).
        """
        with self._lock:
            counts = []
            for item in batch.items:
                self._in_flight.pop(item.key, None)
                counts.append(item.claims)
            return counts

    def _dispatch(self, batch: Batch[_Pending]) -> None:
        """Run one micro-batch through retry/breaker; fall back on failure.

        Called outside every lock: backend calls block (model inference,
        provider polling, retry sleeps) and must never stall other threads'
        cache hits or submissions.
        """
        self.stats.record_batch(batch.reason, len(batch))
        prompts = [item.prompt for item in batch.items]

        def error_class(exc: Exception) -> str:
            if isinstance(exc, BackendTimeout):
                return "timeout"
            if isinstance(exc, CircuitOpenError):
                return "circuit_open"
            return "transport"

        def on_retry(attempt: int, exc: Exception) -> None:
            self.stats.record_retry(error_class(exc))

        opened_before = self.breaker.times_opened
        started = self._clock()
        try:
            responses = run_with_retry(
                lambda: self.backend.generate(prompts),
                self.retry,
                breaker=self.breaker,
                clock=self._clock,
                sleep=self._sleep,
                on_retry=on_retry,
            )
        except (BackendError, CircuitOpenError) as exc:
            self.stats.record_failure(error_class(exc))
            self.stats.record_circuit_opens(
                self.breaker.times_opened - opened_before
            )
            self._fallback_batch(batch)
            return
        self.stats.record_circuit_opens(self.breaker.times_opened - opened_before)
        elapsed = self._clock() - started
        if len(responses) != len(prompts):
            # A misbehaving backend that drops answers is a failure too.
            self.stats.record_failure("malformed")
            self._fallback_batch(batch)
            return
        self.stats.record_latency(elapsed, requests=len(prompts))
        answered = [
            (item, response, bool(parse_yes_no(response)))
            for item, response in zip(batch.items, responses)
        ]
        for item, response, decision in answered:
            self.cache.put(item.key, (response, decision))
        self._retire(batch)
        for item, response, decision in answered:
            item.resolve(response, decision, "backend")

    def _fallback_batch(self, batch: Batch[_Pending]) -> None:
        """Answer a failed batch with the degraded threshold matcher.

        Fallback answers are *not* cached: once the backend recovers, the
        same pair should get a real model answer again.
        """
        pairs = [
            EntityPair(
                pair_id=f"fallback-{i}",
                left=Record(record_id=f"fb-{i}-l", attributes={},
                            description=item.left),
                right=Record(record_id=f"fb-{i}-r", attributes={},
                             description=item.right),
                label=False,
            )
            for i, item in enumerate(batch.items)
        ]
        decisions = self.fallback.predict(Split(name="fallback", pairs=pairs))
        claim_counts = self._retire(batch)
        self.stats.record_fallbacks(sum(claim_counts))
        for item, decision in zip(batch.items, decisions):
            item.resolve(None, bool(decision), "fallback")
