"""Dynamic micro-batching: flush on batch size or wait deadline.

The scheduler accumulates pending items (unique prompt keys in the
engine's case) and decides *when* a batch should go to the backend:

* **size** — the pending set reached ``max_batch_size``;
* **deadline** — the oldest pending item has waited ``max_wait`` seconds;
* **drain** — the caller is out of input and flushes the remainder.

It is a pure data structure: no threads, no callbacks.  Callers feed it
via :meth:`submit`, check :meth:`poll` when time passes, and finish with
:meth:`drain` — which makes its behaviour fully deterministic under the
injected clock and easy to drive from tests and from the synchronous
engine alike.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Generic, TypeVar

__all__ = ["Batch", "Scheduler"]

T = TypeVar("T")


@dataclass(frozen=True)
class Batch(Generic[T]):
    """One flushed micro-batch and the reason it was flushed."""

    items: tuple[T, ...]
    reason: str  # "size" | "deadline" | "drain"

    def __len__(self) -> int:
        return len(self.items)


@dataclass
class Scheduler(Generic[T]):
    """Accumulate items; emit batches on size or deadline."""

    max_batch_size: int = 32
    #: seconds the oldest item may wait before a deadline flush.
    max_wait: float = 0.02
    clock: Callable[[], float] = time.monotonic

    _pending: list[T] = field(default_factory=list, init=False)
    _oldest_enqueued_at: float = field(default=0.0, init=False)

    def __post_init__(self) -> None:
        if self.max_batch_size <= 0:
            raise ValueError("max_batch_size must be positive")
        if self.max_wait < 0:
            raise ValueError("max_wait must be non-negative")

    @property
    def pending(self) -> int:
        return len(self._pending)

    def submit(self, item: T) -> Batch[T] | None:
        """Enqueue *item*; return a batch when the size threshold is hit."""
        if not self._pending:
            self._oldest_enqueued_at = self.clock()
        self._pending.append(item)
        if len(self._pending) >= self.max_batch_size:
            return self._flush("size")
        return None

    def poll(self) -> Batch[T] | None:
        """Return a deadline-expired batch, if the oldest item waited enough."""
        if self._pending and self.clock() - self._oldest_enqueued_at >= self.max_wait:
            return self._flush("deadline")
        return None

    def drain(self) -> Batch[T] | None:
        """Flush whatever is pending (end of input)."""
        if self._pending:
            return self._flush("drain")
        return None

    def _flush(self, reason: str) -> Batch[T]:
        batch = Batch(items=tuple(self._pending), reason=reason)
        self._pending.clear()
        return batch
