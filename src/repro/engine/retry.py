"""Retry hardening: bounded retries, backoff with jitter, circuit breaking.

Backend calls in the engine are synchronous, so the per-request *timeout*
is enforced post-hoc: an attempt whose measured duration exceeds the
budget is treated as failed (``BackendTimeout``) and retried — the same
observable behaviour as a client-side deadline, minus preemption, which a
single-threaded simulator cannot provide.

Jitter is derived from :func:`repro._util.derive_rng` so retry schedules
are bit-reproducible; both the clock and the sleep function are
injectable so tests never actually wait.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Annotated, Callable, TypeVar

from repro._util import derive_rng
from repro.concurrency import guarded_by

__all__ = [
    "BackendError",
    "BackendTimeout",
    "CircuitBreaker",
    "CircuitOpenError",
    "RetryPolicy",
    "run_with_retry",
]

T = TypeVar("T")


class BackendError(RuntimeError):
    """A backend call failed (transport error, provider rejection, ...)."""


class BackendTimeout(BackendError):
    """A backend attempt exceeded the per-request time budget."""


class CircuitOpenError(BackendError):
    """The circuit breaker is open: the backend is marked unhealthy."""


@dataclass
class RetryPolicy:
    """Bounded retries with exponential backoff and deterministic jitter."""

    #: total attempts (first try + retries).
    max_attempts: int = 3
    #: delay before the first retry, seconds.
    backoff_base: float = 0.05
    #: multiplier applied per retry.
    backoff_factor: float = 2.0
    #: backoff ceiling, seconds.
    max_backoff: float = 2.0
    #: relative jitter amplitude: delay is scaled by ``1 ± jitter``.
    jitter: float = 0.25
    #: per-attempt wall-clock budget, seconds (None = unbounded).
    timeout: float | None = None
    #: seed namespace for the jitter stream.
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.backoff_base < 0.0:
            raise ValueError(f"backoff_base must be >= 0, got {self.backoff_base}")
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1 (non-decreasing delays), "
                f"got {self.backoff_factor}"
            )
        if self.max_backoff < 0.0:
            raise ValueError(f"max_backoff must be >= 0, got {self.max_backoff}")
        if not 0.0 <= self.jitter <= 1.0:
            # jitter > 1 would allow negative delays; the backoff floor
            # would silently clamp them, hiding the misconfiguration.
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")
        if self.timeout is not None and self.timeout <= 0.0:
            raise ValueError(f"timeout must be positive, got {self.timeout}")

    def backoff(self, attempt: int) -> float:
        """Sleep before retry number *attempt* (0-based), jittered."""
        delay = min(
            self.backoff_base * self.backoff_factor**attempt, self.max_backoff
        )
        if self.jitter > 0.0:
            u = derive_rng(self.seed, "retry-jitter", attempt).uniform(-1.0, 1.0)
            delay *= 1.0 + self.jitter * u
        return max(delay, 0.0)


@dataclass
class CircuitBreaker:
    """Trips open after consecutive failures; recovers through half-open.

    States: ``closed`` (normal), ``open`` (fail fast until *cooldown*
    elapses), ``half-open`` (one trial call allowed; success closes the
    circuit, failure re-opens it).

    One breaker may be shared by every engine thread: state transitions
    happen under an internal lock so two threads cannot both take the
    half-open trial slot or double-count an open transition.
    ``times_opened`` is a monotonic counter written only under the lock;
    reading it without the lock is safe (it can only lag, never tear).
    """

    failure_threshold: int = 5
    cooldown: float = 30.0
    clock: Callable[[], float] = time.monotonic

    state: Annotated[str, guarded_by("_lock")] = field(
        default="closed", init=False
    )
    consecutive_failures: Annotated[int, guarded_by("_lock")] = field(
        default=0, init=False
    )
    opened_at: Annotated[float, guarded_by("_lock")] = field(
        default=0.0, init=False
    )
    #: closed/half-open → open transitions over the breaker's lifetime.
    times_opened: int = field(default=0, init=False)
    _lock: threading.RLock = field(
        default_factory=threading.RLock, init=False, repr=False, compare=False
    )

    def allow(self) -> bool:
        """Whether a call may proceed right now (may move open → half-open)."""
        with self._lock:
            if self.state == "open":
                if self.clock() - self.opened_at >= self.cooldown:
                    self.state = "half-open"
                    return True
                return False
            return True

    def record_success(self) -> None:
        with self._lock:
            self.consecutive_failures = 0
            self.state = "closed"

    def record_failure(self) -> None:
        with self._lock:
            self.consecutive_failures += 1
            if self.state == "half-open" or (
                self.state == "closed"
                and self.consecutive_failures >= self.failure_threshold
            ):
                self.state = "open"
                self.opened_at = self.clock()
                self.times_opened += 1

    def describe(self) -> str:
        """One-line state summary (used in fail-fast error messages)."""
        with self._lock:
            return (
                f"cooldown {self.cooldown}s, "
                f"{self.consecutive_failures} consecutive failures"
            )


def run_with_retry(
    fn: Callable[[], T],
    policy: RetryPolicy,
    breaker: CircuitBreaker | None = None,
    clock: Callable[[], float] = time.monotonic,
    sleep: Callable[[float], None] = time.sleep,
    on_retry: Callable[[int, Exception], None] | None = None,
) -> T:
    """Call *fn* under *policy*, reporting outcomes to *breaker*.

    Raises :class:`CircuitOpenError` without calling *fn* when the breaker
    refuses the call, and re-raises the last failure once attempts are
    exhausted.  *on_retry(attempt, exc)* fires before each backoff sleep.
    """
    last_error: Exception = BackendError("no attempts made")
    for attempt in range(policy.max_attempts):
        if breaker is not None and not breaker.allow():
            raise CircuitOpenError(f"circuit open ({breaker.describe()})")
        started = clock()
        try:
            result = fn()
        # repro-lint: disable=broad-except — retry boundary by design:
        # every failure of the wrapped call is treated as retryable.
        except Exception as exc:  # noqa: BLE001
            last_error = exc
        else:
            elapsed = clock() - started
            if policy.timeout is not None and elapsed > policy.timeout:
                last_error = BackendTimeout(
                    f"attempt took {elapsed:.3f}s > budget {policy.timeout:.3f}s"
                )
            else:
                if breaker is not None:
                    breaker.record_success()
                return result
        if breaker is not None:
            breaker.record_failure()
        if attempt + 1 < policy.max_attempts:
            if on_retry is not None:
                on_retry(attempt, last_error)
            sleep(policy.backoff(attempt))
    raise last_error
