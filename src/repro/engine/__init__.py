"""Online matching engine: batching, caching, retry-hardened serving.

The experiment code drives models through two one-shot paths — the local
batched runner and the asynchronous batch API.  This package adds the
online layer a production matcher needs on top of them: a
:class:`MatchingEngine` that deduplicates and normalizes incoming match
requests, serves repeats from a bounded LRU+TTL :class:`ResultCache`,
micro-batches cache misses through a :class:`Scheduler` (flush on batch
size or wait deadline), and calls the backends through a
:class:`RetryPolicy` with a :class:`CircuitBreaker` that degrades to the
classical threshold matcher while a backend is unhealthy.  Every stage
reports into :class:`EngineStats` so benchmarks can measure throughput,
hit rates, and latency percentiles.
"""

from repro.engine.backends import (
    Backend,
    BackendError,
    BatchAPIBackend,
    LocalBackend,
    ModelBackend,
    make_backend,
)
from repro.engine.cache import ResultCache
from repro.engine.engine import MatchingEngine, MatchResult
from repro.engine.retry import (
    BackendTimeout,
    CircuitBreaker,
    CircuitOpenError,
    RetryPolicy,
    run_with_retry,
)
from repro.engine.scheduler import Batch, Scheduler
from repro.engine.stats import EngineStats

__all__ = [
    "Backend",
    "BackendError",
    "BackendTimeout",
    "Batch",
    "BatchAPIBackend",
    "CircuitBreaker",
    "CircuitOpenError",
    "EngineStats",
    "LocalBackend",
    "MatchResult",
    "MatchingEngine",
    "ModelBackend",
    "ResultCache",
    "RetryPolicy",
    "Scheduler",
    "make_backend",
    "run_with_retry",
]
