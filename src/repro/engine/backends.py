"""Backends: the engine's uniform view of the two inference paths.

The paper serves open-source models through local batched Transformers
inference and hosted models through the asynchronous batch API.  The
engine sees both through one :class:`Backend` protocol — ``generate``
answers a list of prompts in order — so scheduling, caching, and retry
logic are written once.

Transport-level problems surface as :class:`BackendError` (re-exported
from :mod:`repro.engine.retry`), which is what the retry policy catches.
Per-request semantic failures inside an otherwise healthy batch (e.g. a
malformed prompt the provider rejects individually) come back as empty
strings: the engine parses them to "unparseable", the same convention the
evaluator applies to hedged answers, instead of failing the whole batch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

from repro.engine.retry import BackendError
from repro.llm.model import ChatModel, build_model
from repro.serving.batch_api import BatchAPI, BatchRequest
from repro.serving.local_runner import LocalRunner

__all__ = [
    "Backend",
    "BackendError",
    "BatchAPIBackend",
    "LocalBackend",
    "ModelBackend",
    "make_backend",
]


@runtime_checkable
class Backend(Protocol):
    """Anything that can answer a list of prompts, preserving order."""

    name: str

    def generate(self, prompts: list[str]) -> list[str]:
        """Return one completion per prompt, in input order."""
        ...


@dataclass
class ModelBackend:
    """Thinnest backend: drive a :class:`ChatModel` directly in-process."""

    model: ChatModel
    name: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            self.name = f"model:{self.model.name}"

    def generate(self, prompts: list[str]) -> list[str]:
        try:
            return [self.model.complete(p) for p in prompts]
        except BackendError:
            raise
        # repro-lint: disable=broad-except — transport boundary: any model
        # failure (e.g. ValueError on a malformed prompt) must surface as
        # BackendError for the retry policy to see, like the other backends.
        except Exception as exc:
            raise BackendError(f"{self.name}: {exc}") from exc


@dataclass
class LocalBackend:
    """The local batched Transformers path (open-source models)."""

    runner: LocalRunner
    name: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            self.name = f"local:{self.runner.model.name}"

    def generate(self, prompts: list[str]) -> list[str]:
        try:
            return self.runner.generate(prompts)
        except BackendError:
            raise
        # repro-lint: disable=broad-except — transport boundary: any runner
        # failure must surface as BackendError for the retry policy to see.
        except Exception as exc:
            raise BackendError(f"{self.name}: {exc}") from exc


@dataclass
class BatchAPIBackend:
    """The asynchronous batch-API path (hosted models).

    Each engine micro-batch becomes one provider batch job which is polled
    to completion.  Responses are re-ordered by ``custom_id``; per-request
    provider errors become empty completions (see module docstring).
    """

    api: BatchAPI
    model_name: str
    name: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            self.name = f"batch-api:{self.model_name}"

    @classmethod
    def for_model(cls, model: ChatModel) -> "BatchAPIBackend":
        api = BatchAPI()
        registered = api.register_model(model)
        return cls(api=api, model_name=registered)

    def generate(self, prompts: list[str]) -> list[str]:
        requests = [
            BatchRequest(custom_id=f"req-{i}", prompt=prompt)
            for i, prompt in enumerate(prompts)
        ]
        try:
            job = self.api.submit(self.model_name, requests)
            responses = self.api.run_to_completion(job.job_id)
        except BackendError:
            raise
        # repro-lint: disable=broad-except — transport boundary: any batch-API
        # failure must surface as BackendError for the retry policy to see.
        except Exception as exc:
            raise BackendError(f"{self.name}: {exc}") from exc
        # Re-order by custom_id with an explicit missing-key check: a bare
        # ``by_id[...]`` here could leak KeyError across the Backend
        # boundary, which the engine's typed handlers would not catch.
        by_id = {r.custom_id: r for r in responses}
        out: list[str] = []
        for i in range(len(prompts)):
            response = by_id.get(f"req-{i}")
            if response is None:
                raise BackendError(
                    f"{self.name}: incomplete batch response (missing req-{i})"
                )
            out.append(response.content or "")
        return out


def make_backend(model: ChatModel | str, batch_size: int = 32) -> Backend:
    """Build the paper-faithful backend for a model (or persona name).

    Open-source personas go through :class:`LocalBackend` (the Transformers
    path); hosted personas go through :class:`BatchAPIBackend` (the OpenAI
    batch path) — the same routing the paper's experiments use.
    """
    if isinstance(model, str):
        model = build_model(model)
    if model.persona.kind == "open-source":
        return LocalBackend(runner=LocalRunner(model=model, batch_size=batch_size))
    return BatchAPIBackend.for_model(model)
