"""Engine observability: counters and latency percentiles.

One :class:`EngineStats` object accompanies a :class:`MatchingEngine` for
its lifetime.  Counters are plain integers (cheap to bump on the hot
path); latencies are collected per backend dispatch and summarized into
percentiles on demand.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["EngineStats"]


@dataclass
class EngineStats:
    """Counters and latency samples for one engine instance."""

    #: match requests accepted (before dedup/caching).
    requests: int = 0
    #: requests answered from the result cache.
    cache_hits: int = 0
    #: requests that missed the cache and went to the scheduler.
    cache_misses: int = 0
    #: requests folded into an identical request within the same call.
    deduped: int = 0
    #: micro-batches flushed to a backend.
    batches: int = 0
    #: unique prompts dispatched inside those batches.
    batched_requests: int = 0
    #: flush reasons ("size" / "deadline" / "drain") → count.
    flush_reasons: dict[str, int] = field(default_factory=dict)
    #: backend attempts beyond the first for any batch.
    retries: int = 0
    #: attempts that exceeded the per-request timeout budget.
    timeouts: int = 0
    #: batches whose backend attempts were exhausted (or short-circuited).
    failures: int = 0
    #: requests answered by the degraded threshold-baseline path.
    fallbacks: int = 0
    #: closed→open transitions of the circuit breaker.
    circuit_opens: int = 0
    #: per-request backend latency samples, seconds.
    latencies: list[float] = field(default_factory=list)

    # ------------------------------------------------------------- recording

    def record_batch(self, reason: str, size: int) -> None:
        self.batches += 1
        self.batched_requests += size
        self.flush_reasons[reason] = self.flush_reasons.get(reason, 0) + 1

    @property
    def mean_batch_size(self) -> float:
        return self.batched_requests / self.batches if self.batches else 0.0

    def record_latency(self, seconds: float, requests: int = 1) -> None:
        """Record one dispatch latency, attributed to *requests* requests."""
        self.latencies.extend([seconds] * max(requests, 1))

    # ------------------------------------------------------------- summaries

    @property
    def hit_rate(self) -> float:
        """Cache hits over all cache lookups (0.0 when nothing was looked up)."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def latency_percentiles(self, qs: tuple[int, ...] = (50, 95, 99)) -> dict[str, float]:
        """``{"p50": ..., ...}`` over recorded latencies (empty dict if none)."""
        if not self.latencies:
            return {}
        values = np.percentile(np.asarray(self.latencies), qs)
        return {f"p{q}": float(v) for q, v in zip(qs, values)}

    def as_dict(self) -> dict[str, object]:
        """JSON-serializable snapshot (used by benchmarks and the CLI)."""
        return {
            "requests": self.requests,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "hit_rate": round(self.hit_rate, 4),
            "deduped": self.deduped,
            "batches": self.batches,
            "mean_batch_size": round(self.mean_batch_size, 2),
            "flush_reasons": dict(self.flush_reasons),
            "retries": self.retries,
            "timeouts": self.timeouts,
            "failures": self.failures,
            "fallbacks": self.fallbacks,
            "circuit_opens": self.circuit_opens,
            "latency": self.latency_percentiles(),
        }

    def render(self) -> str:
        """Human-readable multi-line summary for ``repro-em engine --stats``."""
        lines = ["engine stats:"]
        for key, value in self.as_dict().items():
            if key == "latency":
                if value:
                    formatted = ", ".join(
                        f"{name}={seconds * 1e3:.2f}ms"
                        for name, seconds in value.items()
                    )
                    lines.append(f"  latency        {formatted}")
            elif key == "flush_reasons":
                if value:
                    formatted = ", ".join(f"{k}={v}" for k, v in sorted(value.items()))
                    lines.append(f"  flush_reasons  {formatted}")
            elif key == "hit_rate":
                lines.append(f"  hit_rate       {value:.2%}")
            else:
                lines.append(f"  {key:<14} {value}")
        return "\n".join(lines)
