"""Engine observability: counters and latency percentiles (thread-safe).

One :class:`EngineStats` object accompanies a :class:`MatchingEngine` for
its lifetime.  All mutation goes through ``record_*`` methods that take
the stats lock, so counters stay exact when N threads drive the engine
concurrently; the counter fields themselves stay public for cheap reads
in tests and summaries once the threads have joined.  The guarded fields
are declared with :func:`repro.concurrency.guarded_by`, which the deep
linter checks against the actual lock regions.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Annotated

import numpy as np

from repro.concurrency import guarded_by

__all__ = ["EngineStats"]


@dataclass
class EngineStats:
    """Counters and latency samples for one engine instance."""

    #: match requests accepted (before dedup/caching).
    requests: Annotated[int, guarded_by("_lock")] = 0
    #: requests answered from the result cache.
    cache_hits: Annotated[int, guarded_by("_lock")] = 0
    #: requests that missed the cache and went to the scheduler.
    cache_misses: Annotated[int, guarded_by("_lock")] = 0
    #: requests folded into an identical in-flight request.
    deduped: Annotated[int, guarded_by("_lock")] = 0
    #: micro-batches flushed to a backend.
    batches: Annotated[int, guarded_by("_lock")] = 0
    #: unique prompts dispatched inside those batches.
    batched_requests: Annotated[int, guarded_by("_lock")] = 0
    #: flush reasons ("size" / "deadline" / "drain") → count.
    flush_reasons: Annotated[dict, guarded_by("_lock")] = field(
        default_factory=dict
    )
    #: backend attempts beyond the first for any batch.
    retries: Annotated[int, guarded_by("_lock")] = 0
    #: attempts that exceeded the per-request timeout budget.
    timeouts: Annotated[int, guarded_by("_lock")] = 0
    #: attempts that failed with a non-timeout transport error.
    transport_errors: Annotated[int, guarded_by("_lock")] = 0
    #: dispatches refused outright because the circuit breaker was open.
    circuit_open: Annotated[int, guarded_by("_lock")] = 0
    #: batches whose response count did not match the prompt count.
    malformed: Annotated[int, guarded_by("_lock")] = 0
    #: batches whose backend attempts were exhausted (or short-circuited).
    failures: Annotated[int, guarded_by("_lock")] = 0
    #: requests answered by the degraded threshold-baseline path.
    fallbacks: Annotated[int, guarded_by("_lock")] = 0
    #: closed→open transitions of the circuit breaker.
    circuit_opens: Annotated[int, guarded_by("_lock")] = 0
    #: per-request backend latency samples, seconds.
    latencies: Annotated[list, guarded_by("_lock")] = field(
        default_factory=list
    )
    _lock: threading.RLock = field(
        default_factory=threading.RLock, init=False, repr=False, compare=False
    )

    # ------------------------------------------------------------- recording

    def record_request(self, n: int = 1) -> None:
        with self._lock:
            self.requests += n

    def record_lookup(self, hit: bool) -> None:
        with self._lock:
            if hit:
                self.cache_hits += 1
            else:
                self.cache_misses += 1

    def record_dedup(self) -> None:
        with self._lock:
            self.deduped += 1

    def record_batch(self, reason: str, size: int) -> None:
        with self._lock:
            self.batches += 1
            self.batched_requests += size
            self.flush_reasons[reason] = self.flush_reasons.get(reason, 0) + 1

    def record_retry(self, kind: str = "transport") -> None:
        """One failed attempt that will be retried (*kind* classifies it)."""
        with self._lock:
            self.retries += 1
            self._count_error(kind)

    def record_failure(self, kind: str = "transport") -> None:
        """One batch whose dispatch failed for good (*kind* classifies it).

        Error accounting is split by class rather than lumped: attempts
        lost to the timeout budget land in ``timeouts``, transport-level
        rejections in ``transport_errors``, fail-fast refusals by the
        open breaker in ``circuit_open``, and response-count mismatches
        in ``malformed`` — so a degradation report can tell an overloaded
        backend from a flapping one from a misbehaving one.
        """
        with self._lock:
            self.failures += 1
            self._count_error(kind)

    def _count_error(self, kind: str) -> None:
        """Bump the per-class error counter (the RLock re-enters cheaply)."""
        with self._lock:
            if kind == "timeout":
                self.timeouts += 1
            elif kind == "transport":
                self.transport_errors += 1
            elif kind == "circuit_open":
                self.circuit_open += 1
            elif kind == "malformed":
                self.malformed += 1
            else:
                raise ValueError(f"unknown error class {kind!r}")

    def record_fallbacks(self, n: int) -> None:
        with self._lock:
            self.fallbacks += n

    def record_circuit_opens(self, n: int) -> None:
        with self._lock:
            self.circuit_opens += n

    def record_latency(self, seconds: float, requests: int = 1) -> None:
        """Record one dispatch latency, attributed to *requests* requests."""
        with self._lock:
            self.latencies.extend([seconds] * max(requests, 1))

    # ------------------------------------------------------------- summaries

    @property
    def mean_batch_size(self) -> float:
        with self._lock:
            if not self.batches:
                return 0.0
            return self.batched_requests / self.batches

    @property
    def hit_rate(self) -> float:
        """Cache hits over all cache lookups (0.0 when nothing was looked up)."""
        with self._lock:
            total = self.cache_hits + self.cache_misses
            return self.cache_hits / total if total else 0.0

    def latency_percentiles(self, qs: tuple[int, ...] = (50, 95, 99)) -> dict[str, float]:
        """``{"p50": ..., ...}`` over recorded latencies (empty dict if none)."""
        with self._lock:
            if not self.latencies:
                return {}
            values = np.percentile(np.asarray(self.latencies), qs)
        return {f"p{q}": float(v) for q, v in zip(qs, values)}

    def as_dict(self) -> dict[str, object]:
        """JSON-serializable snapshot (used by benchmarks and the CLI)."""
        with self._lock:
            return {
                "requests": self.requests,
                "cache_hits": self.cache_hits,
                "cache_misses": self.cache_misses,
                "hit_rate": round(self.hit_rate, 4),
                "deduped": self.deduped,
                "batches": self.batches,
                "mean_batch_size": round(self.mean_batch_size, 2),
                "flush_reasons": dict(self.flush_reasons),
                "retries": self.retries,
                "timeouts": self.timeouts,
                "transport_errors": self.transport_errors,
                "circuit_open": self.circuit_open,
                "malformed": self.malformed,
                "failures": self.failures,
                "fallbacks": self.fallbacks,
                "circuit_opens": self.circuit_opens,
                "latency": self.latency_percentiles(),
            }

    def render(self) -> str:
        """Human-readable multi-line summary for ``repro-em engine --stats``."""
        lines = ["engine stats:"]
        for key, value in self.as_dict().items():
            if key == "latency":
                if value:
                    formatted = ", ".join(
                        f"{name}={seconds * 1e3:.2f}ms"
                        for name, seconds in value.items()
                    )
                    lines.append(f"  latency        {formatted}")
            elif key == "flush_reasons":
                if value:
                    formatted = ", ".join(f"{k}={v}" for k, v in sorted(value.items()))
                    lines.append(f"  flush_reasons  {formatted}")
            elif key == "hit_rate":
                lines.append(f"  hit_rate       {value:.2%}")
            else:
                lines.append(f"  {key:<14} {value}")
        return "\n".join(lines)
