"""Scholar-domain benchmark generators (DBLP-ACM, DBLP-Scholar).

Both benchmarks match bibliographic entries.  DBLP-ACM pairs two clean
databases (easy — the paper's strongest zero-shot dataset); DBLP-Scholar
pairs DBLP against the much noisier Google Scholar (truncated author lists,
missing venues/years), which makes it noticeably harder.

Records are serialized field-wise as ``authors; title; venue; year``.
"""

from __future__ import annotations

import numpy as np

from repro._util import derive_rng
from repro.datasets.build import HardnessProfile, build_split
from repro.datasets.catalog import PaperCatalog, PaperEntity
from repro.datasets.corruptions import render_paper
from repro.datasets.schema import Dataset, Record, Split
from repro.datasets.serialize import serialize_scholar

__all__ = ["build_dblp_acm", "build_dblp_scholar"]


def _paper_renderer(side_noise: dict[str, float]):
    """Renderer whose noise differs per side: view 'a' = DBLP, view 'b' = other DB."""

    def render(
        entity: PaperEntity,
        rng: np.random.Generator,
        noise: float,
        view: str,
        code_dropout: float = 0.0,
    ) -> Record:
        del code_dropout  # bibliographic records have no model codes
        effective = noise * side_noise.get(view, 1.0)
        _, attributes = render_paper(entity, rng, effective)
        return Record(
            record_id=f"{entity.entity_id}:{view}",
            attributes=attributes,
            description=serialize_scholar(attributes),
        )

    return render


def _build_scholar_dataset(
    name: str,
    seed: int,
    profile: HardnessProfile,
    sizes: dict[str, tuple[int, int]],
    side_noise: dict[str, float],
) -> Dataset:
    render = _paper_renderer(side_noise)
    splits: dict[str, Split] = {}
    for split_name, (n_pos, n_neg) in sizes.items():
        catalog = PaperCatalog(derive_rng(seed, name, split_name).integers(1, 2**31))
        splits[split_name] = build_split(
            name=f"{name}-{split_name}",
            n_pos=n_pos,
            n_neg=n_neg,
            profile=profile,
            sample_entity=catalog.sample,
            sample_sibling=catalog.sibling,
            render=render,
            seed=derive_rng(seed, f"{name}-split", split_name).integers(1, 2**31),
            is_train=(split_name == "train"),
        )
    return Dataset(
        name=name,
        domain="scholar",
        train=splits["train"],
        valid=splits["valid"],
        test=splits["test"],
    )


def build_dblp_acm(seed: int = 5003) -> Dataset:
    """DBLP-ACM — two clean bibliographic databases; the easiest benchmark."""
    profile = HardnessProfile(
        corner_frac_pos=0.15,
        corner_frac_neg=0.25,
        noise_easy=0.15,
        noise_hard=0.4,
        label_noise_train=0.01,
        label_noise_eval=0.005,
    )
    sizes = {
        "train": (1776, 8114),
        "valid": (444, 2029),
        "test": (444, 2029),
    }
    return _build_scholar_dataset(
        name="dblp-acm",
        seed=seed,
        profile=profile,
        sizes=sizes,
        side_noise={"a": 0.8, "b": 1.0},
    )


def build_dblp_scholar(seed: int = 6007) -> Dataset:
    """DBLP-Scholar — DBLP against noisy Google Scholar records."""
    profile = HardnessProfile(
        corner_frac_pos=0.55,
        corner_frac_neg=0.55,
        noise_easy=0.6,
        noise_hard=1.1,
        label_noise_train=0.04,
        label_noise_eval=0.015,
    )
    sizes = {
        "train": (4277, 18688),
        "valid": (1070, 4672),
        "test": (1070, 4672),
    }
    return _build_scholar_dataset(
        name="dblp-scholar",
        seed=seed,
        profile=profile,
        sizes=sizes,
        side_noise={"a": 0.5, "b": 1.5},
    )
