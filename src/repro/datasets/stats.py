"""Dataset profiling: the corner-case and similarity structure of a split.

The WDC Products benchmark paper frames difficulty through corner cases;
this module quantifies that structure for any split — useful both for
understanding the synthetic benchmarks and for profiling user-supplied
data loaded through :mod:`repro.datasets.io`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.schema import Split
from repro.llm.features import FEATURE_NAMES, featurize_pairs

__all__ = ["SplitProfile", "profile_split"]

_SIM_INDEX = FEATURE_NAMES.index("char3_cosine")


@dataclass(frozen=True)
class SplitProfile:
    """Difficulty profile of one split."""

    name: str
    pairs: int
    positive_rate: float
    corner_rate: float
    #: mean surface similarity of matches / non-matches
    match_similarity: float
    nonmatch_similarity: float
    #: overlap of the two similarity distributions in [0, 1]
    #: (1 = indistinguishable → a pure-similarity matcher must fail)
    similarity_overlap: float

    @property
    def separability(self) -> float:
        """1 − overlap: how far surface similarity alone gets a matcher."""
        return 1.0 - self.similarity_overlap


def _histogram_overlap(a: np.ndarray, b: np.ndarray, bins: int = 20) -> float:
    """Overlap coefficient of two empirical distributions on [0, 1]."""
    if a.size == 0 or b.size == 0:
        return 0.0
    edges = np.linspace(0.0, 1.0, bins + 1)
    hist_a, _ = np.histogram(a, bins=edges, density=False)
    hist_b, _ = np.histogram(b, bins=edges, density=False)
    pa = hist_a / hist_a.sum()
    pb = hist_b / hist_b.sum()
    return float(np.minimum(pa, pb).sum())


def profile_split(split: Split) -> SplitProfile:
    """Compute the difficulty profile of *split*."""
    if len(split) == 0:
        raise ValueError("cannot profile an empty split")
    labels = np.array(split.labels(), dtype=bool)
    similarities = featurize_pairs(split.pairs)[:, _SIM_INDEX]
    match_sims = similarities[labels]
    nonmatch_sims = similarities[~labels]
    return SplitProfile(
        name=split.name,
        pairs=len(split),
        positive_rate=float(labels.mean()),
        corner_rate=float(np.mean([p.corner_case for p in split])),
        match_similarity=float(match_sims.mean()) if match_sims.size else 0.0,
        nonmatch_similarity=(
            float(nonmatch_sims.mean()) if nonmatch_sims.size else 0.0
        ),
        similarity_overlap=_histogram_overlap(match_sims, nonmatch_sims),
    )
