"""Benchmark dataset substrate.

Synthetic, seeded generators for the six entity-matching benchmarks used in
the paper (WDC Products 80cc small/medium/large, Abt-Buy, Amazon-Google,
Walmart-Amazon, DBLP-ACM, DBLP-Scholar) with the exact split statistics of
the paper's Table 1, plus serialization rules, JSONL I/O, and a registry of
named loaders.
"""

from repro.datasets.schema import Dataset, EntityPair, Record, Split, SplitStats
from repro.datasets.registry import (
    DATASET_NAMES,
    dataset_domain,
    load_dataset,
    table1_statistics,
)
from repro.datasets.serialize import serialize_record

__all__ = [
    "Dataset",
    "EntityPair",
    "Record",
    "Split",
    "SplitStats",
    "DATASET_NAMES",
    "dataset_domain",
    "load_dataset",
    "serialize_record",
    "table1_statistics",
]
