"""Product-domain benchmark generators.

Four benchmarks mirror the paper's product-domain datasets:

* **WDC Products (80% corner cases)** in small/medium/large training sizes,
  sharing one test set across sizes as in the paper.
* **Abt-Buy** — consumer electronics style, moderate difficulty.
* **Walmart-Amazon** — similar categories, noisier renderings.
* **Amazon-Google** — *software* products where version/edition tokens are
  the discriminative signal, making it the hardest product benchmark
  (matching the paper's zero-shot ordering).

Split sizes follow Table 1 exactly.
"""

from __future__ import annotations

import numpy as np

from repro._util import derive_rng
from repro.datasets.build import HardnessProfile, build_split
from repro.datasets.catalog import (
    ProductCatalog,
    ProductEntity,
    SoftwareCatalog,
    SoftwareEntity,
)
from repro.datasets.corruptions import render_product, render_software
from repro.datasets.schema import Dataset, Record, Split

__all__ = [
    "build_wdc",
    "build_abt_buy",
    "build_amazon_google",
    "build_walmart_amazon",
    "WDC_SIZES",
]

#: (train_pos, train_neg) per WDC variant; valid/test sizes per Table 1.
WDC_SIZES = {
    "small": {"train": (500, 2000), "valid": (500, 2000), "test": (500, 4000)},
    "medium": {"train": (1500, 4500), "valid": (500, 3000), "test": (500, 4000)},
    "large": {"train": (8471, 11364), "valid": (500, 4000), "test": (500, 4000)},
}


def _product_renderer(domain_tag: str):
    """Renderer closure for product entities."""

    def render(
        entity: ProductEntity,
        rng: np.random.Generator,
        noise: float,
        view: str,
        code_dropout: float = 0.0,
    ) -> Record:
        title, attributes = render_product(entity, rng, noise, code_dropout)
        return Record(
            record_id=f"{entity.entity_id}:{view}",
            attributes=attributes,
            description=title,
        )

    del domain_tag
    return render


def _software_renderer():
    def render(
        entity: SoftwareEntity,
        rng: np.random.Generator,
        noise: float,
        view: str,
        code_dropout: float = 0.0,
    ) -> Record:
        del code_dropout  # software titles carry versions, not model codes
        title, attributes = render_software(entity, rng, noise)
        return Record(
            record_id=f"{entity.entity_id}:{view}",
            attributes=attributes,
            description=title,
        )

    return render


class _MixedCatalog:
    """Product catalog with a software slice (WDC spans all categories).

    The real WDC Products corpus covers electronics *and* software offers;
    mixing a fraction of software entities into the WDC pools is what lets
    models fine-tuned on WDC transfer to the software-only Amazon-Google
    benchmark, as observed in the paper.
    """

    def __init__(
        self,
        seed: int,
        software_share: float,
        categories: list[str] | None = None,
    ) -> None:
        self._products = ProductCatalog(seed, categories=categories)
        self._software = SoftwareCatalog(seed ^ 0x5A5A5A)
        self._share = software_share
        self._rng = derive_rng(seed, "mixed-catalog")

    def sample(self):
        if self._rng.random() < self._share:
            return self._software.sample()
        return self._products.sample()

    def sibling(self, entity, variant: int):
        if isinstance(entity, SoftwareEntity):
            return self._software.sibling(entity, variant)
        return self._products.sibling(entity, variant)


def _mixed_renderer():
    product_render = _product_renderer("mixed")
    software_render = _software_renderer()

    def render(entity, rng, noise, view, code_dropout=0.0):
        if isinstance(entity, SoftwareEntity):
            return software_render(entity, rng, noise, view)
        return product_render(entity, rng, noise, view, code_dropout)

    return render


def _build_product_dataset(
    name: str,
    seed: int,
    profile: HardnessProfile,
    sizes: dict[str, tuple[int, int]],
    categories: list[str] | None = None,
    shared_eval_seed: int | None = None,
    software_share: float = 0.0,
) -> Dataset:
    """Assemble a product dataset with independent catalogs per split.

    ``shared_eval_seed`` lets several variants (the WDC sizes) share
    identical valid/test entity pools.
    """
    splits: dict[str, Split] = {}
    for split_name, (n_pos, n_neg) in sizes.items():
        split_seed = seed
        build_name = f"{name}-{split_name}"
        if shared_eval_seed is not None and split_name in ("valid", "test"):
            # Shared pools across variants (the WDC sizes): seed *and* name
            # must be variant-independent so the rng streams coincide and
            # every variant is evaluated on identical pairs.
            split_seed = shared_eval_seed
            build_name = f"wdc-shared-{split_name}"
        catalog_seed = int(
            derive_rng(split_seed, build_name, split_name).integers(1, 2**31)
        )
        if software_share > 0.0:
            catalog = _MixedCatalog(
                catalog_seed, software_share, categories=categories
            )
            render = _mixed_renderer()
        else:
            catalog = ProductCatalog(catalog_seed, categories=categories)
            render = _product_renderer(name)
        built = build_split(
            name=build_name,
            n_pos=n_pos,
            n_neg=n_neg,
            profile=profile,
            sample_entity=catalog.sample,
            sample_sibling=catalog.sibling,
            render=render,
            seed=split_seed,
            is_train=(split_name == "train"),
        )
        built.name = f"{name}-{split_name}"
        splits[split_name] = built
    return Dataset(
        name=name,
        domain="product",
        train=splits["train"],
        valid=splits["valid"],
        test=splits["test"],
    )


def build_wdc(size: str = "small", seed: int = 1009) -> Dataset:
    """WDC Products 80cc — hardest corner-case profile, shared test set.

    The ``size`` selects the training split (small/medium/large); the
    valid/test pools depend only on the shared seed so all sizes are
    evaluated on identical pairs (within the same split sizes as Table 1).
    """
    if size not in WDC_SIZES:
        raise ValueError(f"unknown WDC size {size!r}; choose from {list(WDC_SIZES)}")
    profile = HardnessProfile(
        corner_frac_pos=0.8,
        corner_frac_neg=0.8,
        noise_easy=0.3,
        noise_hard=0.6,
        code_dropout=0.03,
        label_noise_train=0.06,
        label_noise_eval=0.02,
    )
    return _build_product_dataset(
        name=f"wdc-{size}",
        seed=int(derive_rng(seed, "wdc", size).integers(1, 2**31)),
        profile=profile,
        sizes=WDC_SIZES[size],
        shared_eval_seed=seed,
        software_share=0.15,
    )


def build_abt_buy(seed: int = 2003) -> Dataset:
    """Abt-Buy — consumer electronics, moderate corner-case rate."""
    profile = HardnessProfile(
        corner_frac_pos=0.35,
        corner_frac_neg=0.3,
        noise_easy=0.25,
        noise_hard=0.45,
        code_dropout=0.02,
        label_noise_train=0.03,
        label_noise_eval=0.01,
    )
    sizes = {
        "train": (822, 6837),
        "valid": (206, 1710),
        "test": (206, 1710),
    }
    categories = ["headset", "camera", "printer", "phone", "storage", "watch"]
    return _build_product_dataset(
        name="abt-buy", seed=seed, profile=profile, sizes=sizes, categories=categories
    )


def build_walmart_amazon(seed: int = 3001) -> Dataset:
    """Walmart-Amazon — same categories as Abt-Buy but noisier renderings."""
    profile = HardnessProfile(
        corner_frac_pos=0.6,
        corner_frac_neg=0.55,
        noise_easy=0.5,
        noise_hard=0.85,
        code_dropout=0.18,
        label_noise_train=0.05,
        label_noise_eval=0.02,
    )
    sizes = {
        "train": (769, 7424),
        "valid": (193, 1856),
        "test": (193, 1856),
    }
    categories = ["headset", "camera", "printer", "phone", "storage", "shoe", "bike"]
    return _build_product_dataset(
        name="walmart-amazon",
        seed=seed,
        profile=profile,
        sizes=sizes,
        categories=categories,
    )


def build_amazon_google(seed: int = 4001) -> Dataset:
    """Amazon-Google — software products; version tokens carry the signal."""
    profile = HardnessProfile(
        corner_frac_pos=0.6,
        corner_frac_neg=0.65,
        noise_easy=0.4,
        noise_hard=0.65,
        label_noise_train=0.06,
        label_noise_eval=0.03,
    )
    sizes = {
        "train": (933, 8234),
        "valid": (234, 2059),
        "test": (234, 2059),
    }
    render = _software_renderer()
    splits: dict[str, Split] = {}
    for split_name, (n_pos, n_neg) in sizes.items():
        catalog = SoftwareCatalog(
            derive_rng(seed, "amazon-google", split_name).integers(1, 2**31)
        )
        splits[split_name] = build_split(
            name=f"amazon-google-{split_name}",
            n_pos=n_pos,
            n_neg=n_neg,
            profile=profile,
            sample_entity=catalog.sample,
            sample_sibling=catalog.sibling,
            render=render,
            seed=derive_rng(seed, "ag-split", split_name).integers(1, 2**31),
            is_train=(split_name == "train"),
        )
    return Dataset(
        name="amazon-google",
        domain="product",
        train=splits["train"],
        valid=splits["valid"],
        test=splits["test"],
    )
