"""Seeded synthetic dedup corpora for blocking benchmarks.

The real benchmark splits top out at a few thousand records; measuring
blocking *scale* (ingest throughput, candidate growth at 100k records)
needs a corpus whose size, duplicate rate, and corruption level are
knobs.  :func:`synthetic_dedup_corpus` generates one deterministically:

* each **entity** renders a canonical token sequence — brand and product
  line from mid-sized vocabularies (so popular tokens produce large
  token-blocking buckets at scale), a near-unique model code, a
  category, and a few spec tokens;
* each entity appears in 1..4 **records**; the copies after the first
  are corrupted (token drops, typos, joined model codes, noise words,
  reorderings), which lowers their Jaccard overlap with the canonical
  form without severing it;
* ground truth is the set of intra-entity record pairs, and arrival
  order is a seeded shuffle so ingestion never sees cluster members
  adjacently.

Everything is a pure function of ``(n, seed, knobs)`` via
:func:`~repro._util.derive_rng`, so benchmarks and tests regenerate the
exact corpus from its parameters.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro._util import derive_rng
from repro.datasets.corruptions import typo
from repro.datasets.schema import Record

__all__ = ["SyntheticCorpus", "synthetic_dedup_corpus"]

_BRAND_PARTS = (
    ["ak", "bel", "cor", "dav", "el", "fen", "gor", "hal", "ist", "jov"],
    ["tron", "mex", "dale", "vio", "run", "sona", "lix", "net", "core", "bit"],
)
_LINE_PARTS = (
    ["aero", "blaze", "cryo", "delta", "echo", "flux", "gale", "halo",
     "ion", "jet", "kilo", "luma", "meso", "nova", "onyx", "pulse"],
    ["band", "cast", "dock", "edge", "form", "grid", "head", "link",
     "mark", "node", "pad", "rig", "span", "tide", "view"],
)
_CATEGORIES = [
    "headset", "printer", "camera", "router", "speaker", "keyboard",
    "monitor", "scanner", "charger", "drive", "tablet", "projector",
    "mouse", "webcam", "adapter", "enclosure", "microphone", "dock",
    "switch", "console",
]
_CAPACITIES = ["16gb", "32gb", "64gb", "128gb", "256gb", "512gb", "1tb", "2tb"]
_COLORS = [
    "black", "white", "silver", "blue", "red", "green", "gray", "gold",
]
_EDITIONS = ["pro", "lite", "max", "plus", "mini", "ultra"]
_NOISE = [
    "new", "oem", "retail", "bulk", "genuine", "refurb", "sealed", "bundle",
]

_CLUSTER_SIZES = [1, 2, 3, 4]
_CLUSTER_PROBS = [0.55, 0.25, 0.13, 0.07]


@dataclass(frozen=True)
class SyntheticCorpus:
    """A generated dedup corpus with its ground-truth clustering."""

    records: tuple[Record, ...]
    clusters: tuple[tuple[str, ...], ...]

    @cached_property
    def true_pairs(self) -> frozenset[tuple[str, str]]:
        """All intra-cluster record-id pairs, each sorted ascending."""
        pairs = set()
        for cluster in self.clusters:
            for i in range(len(cluster)):
                for j in range(i + 1, len(cluster)):
                    pairs.add(tuple(sorted((cluster[i], cluster[j]))))
        return frozenset(pairs)


def _canonical_tokens(rng: np.random.Generator) -> list[str]:
    brand = (
        _BRAND_PARTS[0][int(rng.integers(len(_BRAND_PARTS[0])))]
        + _BRAND_PARTS[1][int(rng.integers(len(_BRAND_PARTS[1])))]
    )
    line = (
        _LINE_PARTS[0][int(rng.integers(len(_LINE_PARTS[0])))]
        + _LINE_PARTS[1][int(rng.integers(len(_LINE_PARTS[1])))]
    )
    code_letters = "".join(
        chr(ord("a") + int(c)) for c in rng.integers(0, 26, size=2)
    )
    model = f"{code_letters}-{int(rng.integers(1000, 9999))}"
    tokens = [
        brand,
        line,
        model,
        _CATEGORIES[int(rng.integers(len(_CATEGORIES)))],
        _CAPACITIES[int(rng.integers(len(_CAPACITIES)))],
        _COLORS[int(rng.integers(len(_COLORS)))],
    ]
    if rng.random() < 0.6:
        tokens.append(_EDITIONS[int(rng.integers(len(_EDITIONS)))])
    return tokens


def _corrupt(
    tokens: list[str], rng: np.random.Generator, corruption: float
) -> list[str]:
    out = list(tokens)
    # Drop optional tail tokens (capacity / color / edition), never the
    # brand, line, or model code that anchor the match.
    kept = out[:3] + [
        token for token in out[3:] if rng.random() >= corruption * 0.6
    ]
    out = kept
    if rng.random() < corruption:
        which = int(rng.integers(0, 2))  # brand or line word
        out[which] = typo(out[which], rng)
    if rng.random() < corruption * 0.8:
        out[2] = out[2].replace("-", "")  # "ak-4821" -> "ak4821"
    for word in _NOISE:
        if rng.random() < corruption * 0.15:
            out.append(word)
    if rng.random() < 0.5:
        rng.shuffle(out)
    return out


def synthetic_dedup_corpus(
    n: int, seed: int = 0, corruption: float = 0.25
) -> SyntheticCorpus:
    """Generate *n* records with seeded duplicate clusters.

    ``corruption`` in [0, 1] scales how far duplicate renderings drift
    from the canonical token sequence (0.25 keeps intra-cluster Jaccard
    mostly above 0.5).  Record ids are ``s<width-padded ordinal>``;
    arrival order is a seeded shuffle of the generation order.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if not 0.0 <= corruption <= 1.0:
        raise ValueError("corruption must be in [0, 1]")
    rng = derive_rng(seed, "synthetic", "dedup", n)
    width = len(str(n - 1))
    records: list[Record] = []
    clusters: list[tuple[str, ...]] = []
    while len(records) < n:
        size = min(
            int(rng.choice(_CLUSTER_SIZES, p=_CLUSTER_PROBS)),
            n - len(records),
        )
        canonical = _canonical_tokens(rng)
        member_ids = []
        for copy in range(size):
            tokens = (
                list(canonical)
                if copy == 0
                else _corrupt(canonical, rng, corruption)
            )
            record_id = f"s{len(records):0{width}d}"
            description = " ".join(tokens)
            records.append(
                Record(
                    record_id=record_id,
                    attributes={"title": description},
                    description=description,
                )
            )
            member_ids.append(record_id)
        if size > 1:
            clusters.append(tuple(member_ids))
    order = np.arange(len(records))
    derive_rng(seed, "synthetic", "order", n).shuffle(order)
    shuffled = tuple(records[int(i)] for i in order)
    return SyntheticCorpus(records=shuffled, clusters=tuple(clusters))
