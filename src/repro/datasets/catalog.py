"""Synthetic entity catalogs.

The paper's benchmarks are built from real web data (product offers from
online shops, bibliographic entries from DBLP / ACM / Google Scholar).
Offline we generate structurally equivalent entities: products have a brand,
product line, model code, variant and specs; software has vendor, name,
edition, version and platform; papers have authors, title, venue and year.

Catalogs are deterministic functions of a seed, so every dataset build is
reproducible.  The vocabularies are fictional but shaped like the real data
(alphanumeric model codes, capacity specs, versioned software editions,
venue abbreviations, author initials).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import derive_rng

__all__ = [
    "ProductEntity",
    "SoftwareEntity",
    "PaperEntity",
    "ProductCatalog",
    "SoftwareCatalog",
    "PaperCatalog",
]

# --------------------------------------------------------------------------
# Vocabularies (fictional, but shaped like the real benchmarks)
# --------------------------------------------------------------------------

PRODUCT_BRANDS = [
    "Aventra", "Brixon", "Corvek", "Dynalux", "Elmara", "Fentrix", "Gavotti",
    "Helioz", "Ibexon", "Jaltec", "Kyrona", "Lumetra", "Maverin", "Nexilon",
    "Orvita", "Pelagor", "Quorvex", "Rastelli", "Sonavik", "Tarvona",
    "Ulmetric", "Vextara", "Wolvik", "Xandrel", "Yorvala", "Zephtron",
    "Acutron", "Belmora", "Cindrex", "Dorvane",
]

PRODUCT_CATEGORIES = {
    "headset": {
        "lines": ["Evolve", "Pulse", "Clarity", "Vox", "Aria", "Tempo"],
        "types": ["stereo headset", "mono headset", "wireless headset",
                  "usb headset", "gaming headset"],
        "specs": ["noise cancelling", "bluetooth", "on-ear", "over-ear",
                  "with microphone", "dual connectivity"],
        "units": [],
    },
    "storage": {
        "lines": ["Vault", "Archive", "Rapid", "Core", "Titan", "Nimbus"],
        "types": ["ssd", "hdd", "usb flash drive", "external drive",
                  "nvme ssd"],
        "specs": ["120gb", "250gb", "500gb", "1tb", "2tb", "4tb"],
        "units": ["gb", "tb"],
    },
    "bike": {
        "lines": ["PG", "XG", "CS", "Force", "Rival", "Apex"],
        "types": ["cassette", "chainring", "derailleur", "crankset",
                  "shifter"],
        "specs": ["7sp", "8sp", "9sp", "10sp", "11sp", "12sp",
                  "11-36t", "12-32t", "11-28t", "10-42t"],
        "units": ["sp", "t"],
    },
    "camera": {
        "lines": ["Optio", "Lumix", "Vista", "Pixon", "Retina", "Focal"],
        "types": ["digital camera", "action camera", "camcorder",
                  "mirrorless camera"],
        "specs": ["12mp", "16mp", "20mp", "24mp", "4k", "1080p"],
        "units": ["mp"],
    },
    "printer": {
        "lines": ["LaserPro", "InkMax", "OfficeJet", "PageWise", "DocuLine"],
        "types": ["laser printer", "inkjet printer", "multifunction printer",
                  "label printer"],
        "specs": ["duplex", "wireless", "color", "monochrome", "a4", "a3"],
        "units": [],
    },
    "phone": {
        "lines": ["Galaxy", "Nova", "Prime", "Edge", "Zen", "Flux"],
        "types": ["smartphone", "cell phone", "mobile phone"],
        "specs": ["64gb", "128gb", "256gb", "black", "silver", "blue"],
        "units": ["gb"],
    },
    "shoe": {
        "lines": ["Strider", "Vector", "Glide", "Summit", "Pace", "Trail"],
        "types": ["running shoe", "trail shoe", "walking shoe", "sneaker"],
        "specs": ["size 8", "size 9", "size 10", "size 11", "mens",
                  "womens"],
        "units": [],
    },
    "watch": {
        "lines": ["Chrono", "Astra", "Orbit", "Mariner", "Pilot"],
        "types": ["smartwatch", "sports watch", "fitness tracker"],
        "specs": ["gps", "heart rate", "44mm", "40mm", "waterproof"],
        "units": ["mm"],
    },
}

SOFTWARE_VENDORS = [
    "Macrosoft", "Adobi", "Corell", "Symantix", "Intuitive", "Nuvosoft",
    "Avantek", "Cyberlink", "Roxion", "Panther Software", "Quark Systems",
    "Borland Digital",
]

SOFTWARE_PRODUCTS = [
    "Office Suite", "Photo Studio", "Video Editor", "Draw", "Page Maker",
    "Tax Prep", "Antivirus Shield", "System Utilities", "Web Designer",
    "Database Manager", "Presentation Maker", "Accounting Plus",
    "Media Converter", "Backup Master", "PDF Creator", "Language Tutor",
]

SOFTWARE_EDITIONS = [
    "standard", "professional", "home", "premium", "deluxe", "ultimate",
    "student", "small business",
]

SOFTWARE_VERSIONS = [
    "2003", "2005", "2007", "2009", "2010", "3.0", "4.0", "5.0", "6.0",
    "7.0", "8.0", "9.0", "x3", "x4", "xi",
]

SOFTWARE_PLATFORMS = ["windows", "mac", "win/mac", "windows xp", "windows vista"]

FIRST_NAMES = [
    "alan", "maria", "jun", "petra", "samuel", "ingrid", "rafael", "akiko",
    "david", "elena", "tomas", "priya", "george", "hanna", "victor", "lena",
    "oscar", "mei", "daniel", "sofia", "erik", "nadia", "pablo", "ruth",
    "hugo", "iris", "felix", "clara", "ivan", "nora",
]

LAST_NAMES = [
    "müller", "tanaka", "rossi", "novak", "silva", "kowalski", "jensen",
    "garcia", "smirnov", "okafor", "lindgren", "moreau", "fischer", "santos",
    "horvath", "ahmed", "peters", "wagner", "costa", "yamamoto", "berger",
    "dubois", "keller", "fontana", "larsen", "marino", "weiss", "nakamura",
    "olsen", "ricci",
]

TITLE_TOPICS = [
    "query optimization", "entity resolution", "data integration",
    "stream processing", "index structures", "transaction management",
    "schema matching", "graph databases", "approximate joins",
    "columnar storage", "data cleaning", "workload forecasting",
    "distributed snapshots", "record linkage", "view maintenance",
    "cardinality estimation", "log-structured storage", "data provenance",
    "similarity search", "adaptive indexing", "spatial queries",
    "temporal databases", "crowdsourced labeling", "knowledge graphs",
]

TITLE_PREFIXES = [
    "efficient", "scalable", "adaptive", "incremental", "robust",
    "learning-based", "parallel", "distributed", "online", "declarative",
    "towards practical", "a survey of", "benchmarking", "rethinking",
]

TITLE_SUFFIXES = [
    "in large-scale systems", "for relational data", "over data streams",
    "with machine learning", "on modern hardware", "in the cloud",
    "for heterogeneous sources", "using deep models", "at scale",
    "revisited",
]

VENUES = [
    ("sigmod", "proceedings of the acm sigmod international conference on management of data"),
    ("vldb", "proceedings of the vldb endowment"),
    ("icde", "proceedings of the ieee international conference on data engineering"),
    ("edbt", "proceedings of the international conference on extending database technology"),
    ("cikm", "proceedings of the acm international conference on information and knowledge management"),
    ("kdd", "proceedings of the acm sigkdd conference on knowledge discovery and data mining"),
    ("tods", "acm transactions on database systems"),
    ("tkde", "ieee transactions on knowledge and data engineering"),
]


# --------------------------------------------------------------------------
# Entities
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class ProductEntity:
    """A ground-truth product (before surface-form corruption)."""

    entity_id: str
    brand: str
    category: str
    line: str
    model_code: str
    product_type: str
    spec: str
    sku: str


@dataclass(frozen=True)
class SoftwareEntity:
    """A ground-truth software product (Amazon-Google style)."""

    entity_id: str
    vendor: str
    product: str
    edition: str
    version: str
    platform: str
    sku: str


@dataclass(frozen=True)
class PaperEntity:
    """A ground-truth bibliographic entry."""

    entity_id: str
    authors: tuple[str, ...]
    title: str
    venue_abbrev: str
    venue_full: str
    year: int


# --------------------------------------------------------------------------
# Catalogs (entity samplers)
# --------------------------------------------------------------------------


class ProductCatalog:
    """Samples distinct ground-truth products, plus hard siblings.

    A *sibling* of a product shares brand, category and line but differs in
    model code or spec — the raw material for corner-case negatives.
    """

    def __init__(self, seed: int, categories: list[str] | None = None) -> None:
        self._seed = seed
        self._categories = categories or list(PRODUCT_CATEGORIES)
        self._counter = 0

    def _rng(self, *parts: object) -> np.random.Generator:
        return derive_rng(self._seed, "product-catalog", *parts)

    def sample(self) -> ProductEntity:
        """Sample a fresh distinct product entity."""
        idx = self._counter
        self._counter += 1
        rng = self._rng(idx)
        category = str(rng.choice(self._categories))
        spec_pool = PRODUCT_CATEGORIES[category]
        brand = str(rng.choice(PRODUCT_BRANDS))
        line = str(rng.choice(spec_pool["lines"]))
        model_code = self._model_code(rng)
        product_type = str(rng.choice(spec_pool["types"]))
        spec = str(rng.choice(spec_pool["specs"]))
        sku = self._sku(rng)
        return ProductEntity(
            entity_id=f"prod-{self._seed}-{idx}",
            brand=brand,
            category=category,
            line=line,
            model_code=model_code,
            product_type=product_type,
            spec=spec,
            sku=sku,
        )

    def sibling(self, entity: ProductEntity, variant: int) -> ProductEntity:
        """Return a distinct product that closely resembles *entity*.

        Shares brand/category/line; differs in model code and possibly spec,
        mirroring the "hard negative" construction of WDC Products.
        """
        rng = self._rng(entity.entity_id, "sibling", variant)
        spec_pool = PRODUCT_CATEGORIES[entity.category]
        new_code = self._perturb_code(entity.model_code, rng)
        spec = entity.spec
        if rng.random() < 0.5:
            others = [s for s in spec_pool["specs"] if s != entity.spec]
            if others:
                spec = str(rng.choice(others))
        return ProductEntity(
            entity_id=f"{entity.entity_id}-sib{variant}",
            brand=entity.brand,
            category=entity.category,
            line=entity.line,
            model_code=new_code,
            product_type=entity.product_type,
            spec=spec,
            sku=self._sku(rng),
        )

    @staticmethod
    def _model_code(rng: np.random.Generator) -> str:
        """Alphanumeric model code like ``80``, ``730`` or ``a55x``."""
        style = rng.random()
        if style < 0.45:
            return str(int(rng.integers(10, 999)))
        if style < 0.8:
            letter = chr(ord("a") + int(rng.integers(0, 26)))
            return f"{letter}{int(rng.integers(10, 99))}"
        return f"{int(rng.integers(100, 9999))}{chr(ord('a') + int(rng.integers(0, 6)))}"

    @staticmethod
    def _perturb_code(code: str, rng: np.random.Generator) -> str:
        """Return a different but similar-looking model code."""
        digits = [c for c in code if c.isdigit()]
        if digits:
            pos = code.index(digits[int(rng.integers(0, len(digits)))])
            old = code[pos]
            new = str((int(old) + 1 + int(rng.integers(0, 8))) % 10)
            if new == old:
                new = str((int(old) + 1) % 10)
            return code[:pos] + new + code[pos + 1:]
        return code + str(int(rng.integers(0, 9)))

    @staticmethod
    def _sku(rng: np.random.Generator) -> str:
        return "-".join(
            str(int(rng.integers(100, 9999))) for _ in range(3)
        )


class SoftwareCatalog:
    """Samples software products where versions/editions are discriminative."""

    def __init__(self, seed: int) -> None:
        self._seed = seed
        self._counter = 0

    def _rng(self, *parts: object) -> np.random.Generator:
        return derive_rng(self._seed, "software-catalog", *parts)

    def sample(self) -> SoftwareEntity:
        idx = self._counter
        self._counter += 1
        rng = self._rng(idx)
        return SoftwareEntity(
            entity_id=f"soft-{self._seed}-{idx}",
            vendor=str(rng.choice(SOFTWARE_VENDORS)),
            product=str(rng.choice(SOFTWARE_PRODUCTS)),
            edition=str(rng.choice(SOFTWARE_EDITIONS)),
            version=str(rng.choice(SOFTWARE_VERSIONS)),
            platform=str(rng.choice(SOFTWARE_PLATFORMS)),
            sku=str(int(rng.integers(10000, 99999))),
        )

    def sibling(self, entity: SoftwareEntity, variant: int) -> SoftwareEntity:
        """Same vendor+product, different version or edition (hard negative)."""
        rng = self._rng(entity.entity_id, "sibling", variant)
        version = entity.version
        edition = entity.edition
        if rng.random() < 0.7:
            others = [v for v in SOFTWARE_VERSIONS if v != entity.version]
            version = str(rng.choice(others))
        else:
            others = [e for e in SOFTWARE_EDITIONS if e != entity.edition]
            edition = str(rng.choice(others))
        return SoftwareEntity(
            entity_id=f"{entity.entity_id}-sib{variant}",
            vendor=entity.vendor,
            product=entity.product,
            edition=edition,
            version=version,
            platform=entity.platform,
            sku=str(int(rng.integers(10000, 99999))),
        )


class PaperCatalog:
    """Samples bibliographic entries, plus near-duplicate siblings."""

    def __init__(self, seed: int) -> None:
        self._seed = seed
        self._counter = 0

    def _rng(self, *parts: object) -> np.random.Generator:
        return derive_rng(self._seed, "paper-catalog", *parts)

    def sample(self) -> PaperEntity:
        idx = self._counter
        self._counter += 1
        rng = self._rng(idx)
        n_authors = int(rng.integers(1, 5))
        authors = tuple(
            f"{rng.choice(FIRST_NAMES)} {rng.choice(LAST_NAMES)}"
            for _ in range(n_authors)
        )
        title = self._title(rng)
        abbrev, full = VENUES[int(rng.integers(0, len(VENUES)))]
        return PaperEntity(
            entity_id=f"paper-{self._seed}-{idx}",
            authors=authors,
            title=title,
            venue_abbrev=abbrev,
            venue_full=full,
            year=int(rng.integers(1995, 2015)),
        )

    def sibling(self, entity: PaperEntity, variant: int) -> PaperEntity:
        """A different paper by overlapping authors in the same venue.

        Hard negatives in the bibliographic benchmarks are typically other
        papers by the same group (shared authors, same venue, nearby year).
        """
        rng = self._rng(entity.entity_id, "sibling", variant)
        title = self._title(rng)
        keep = max(1, len(entity.authors) - 1)
        authors = entity.authors[:keep] + (
            f"{rng.choice(FIRST_NAMES)} {rng.choice(LAST_NAMES)}",
        )
        year = entity.year + int(rng.integers(-2, 3))
        return PaperEntity(
            entity_id=f"{entity.entity_id}-sib{variant}",
            authors=authors,
            title=title,
            venue_abbrev=entity.venue_abbrev,
            venue_full=entity.venue_full,
            year=year,
        )

    @staticmethod
    def _title(rng: np.random.Generator) -> str:
        prefix = str(rng.choice(TITLE_PREFIXES))
        topic = str(rng.choice(TITLE_TOPICS))
        if rng.random() < 0.6:
            suffix = str(rng.choice(TITLE_SUFFIXES))
            return f"{prefix} {topic} {suffix}"
        return f"{prefix} {topic}"
