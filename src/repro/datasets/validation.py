"""Dataset integrity validation.

Checks a benchmark for the defects that silently invalidate EM evaluations:
train/test leakage, duplicate pairs, empty descriptions, degenerate label
distributions, and split-size drift.  Used by tests and available to users
who load external JSONL datasets through :mod:`repro.datasets.io`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.datasets.schema import Dataset, Split

__all__ = ["ValidationReport", "validate_dataset", "validate_split"]


@dataclass
class ValidationReport:
    """Outcome of a validation run: a list of human-readable problems."""

    problems: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems

    def add(self, problem: str) -> None:
        self.problems.append(problem)


def validate_split(split: Split, report: ValidationReport | None = None) -> ValidationReport:
    """Check one split for duplicates, empties and label degeneracy."""
    report = report or ValidationReport()
    seen: set[tuple[str, str]] = set()
    duplicates = 0
    empties = 0
    for pair in split:
        if pair.key in seen:
            duplicates += 1
        seen.add(pair.key)
        if not pair.left.description.strip() or not pair.right.description.strip():
            empties += 1
    if duplicates:
        report.add(f"{split.name}: {duplicates} duplicate description pairs")
    if empties:
        report.add(f"{split.name}: {empties} pairs with empty descriptions")
    stats = split.stats
    if len(split) and (stats.positives == 0 or stats.negatives == 0):
        report.add(f"{split.name}: degenerate label distribution "
                   f"({stats.positives}+/{stats.negatives}-)")
    return report


def validate_dataset(dataset: Dataset) -> ValidationReport:
    """Validate all splits and check for pair leakage between them."""
    report = ValidationReport()
    for split in dataset.splits.values():
        validate_split(split, report)

    keys = {
        name: {pair.key for pair in split}
        for name, split in dataset.splits.items()
    }
    for a, b in (("train", "valid"), ("train", "test"), ("valid", "test")):
        overlap = keys[a] & keys[b]
        if overlap:
            report.add(
                f"{dataset.name}: {len(overlap)} pairs leak between "
                f"{a} and {b}"
            )
    return report
