"""Record serialization rules.

Following the paper: product records are represented by their *title*
attribute only; bibliographic records concatenate the author, title, venue
and year attributes with a semicolon delimiter.
"""

from __future__ import annotations

from typing import Mapping

__all__ = ["serialize_product", "serialize_scholar", "serialize_record"]

SCHOLAR_FIELDS = ("authors", "title", "venue", "year")


def serialize_product(attributes: Mapping[str, str], title: str) -> str:
    """Products are serialized as their (already rendered) title string."""
    del attributes  # products expose only the title surface form
    return title


def serialize_scholar(attributes: Mapping[str, str]) -> str:
    """Concatenate author/title/venue/year with '; ' as in the paper."""
    return "; ".join(attributes.get(field, "") for field in SCHOLAR_FIELDS)


def serialize_record(domain: str, attributes: Mapping[str, str], title: str = "") -> str:
    """Serialize according to the record's topical domain."""
    if domain == "product":
        return serialize_product(attributes, title)
    if domain == "scholar":
        return serialize_scholar(attributes)
    raise ValueError(f"unknown domain {domain!r}")
