"""Generic pair-set construction from catalogs.

Every benchmark is built the same way:

* **positives** — two independently rendered surface forms of the same
  catalog entity; *corner-case positives* use aggressive rendering noise so
  the two forms look dissimilar (hard positives).
* **negatives** — either two unrelated entities (easy negatives) or an
  entity versus one of its catalog *siblings* (corner-case negatives, e.g.
  same product line with a different model number).
* a small **label-noise** rate flips labels, mimicking the annotation noise
  of web-scraped benchmarks (this is what the paper's error-based filtering
  implicitly removes).

A :class:`HardnessProfile` holds the knobs; each dataset module instantiates
one to match the difficulty ordering observed in the paper's zero-shot rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol

import numpy as np

from repro._util import derive_rng
from repro.datasets.schema import EntityPair, Record, Split

__all__ = ["HardnessProfile", "RecordRenderer", "build_split"]


@dataclass(frozen=True)
class HardnessProfile:
    """Difficulty knobs for one benchmark.

    Attributes
    ----------
    corner_frac_pos / corner_frac_neg:
        Fraction of positives / negatives that are corner cases
        (WDC Products 80cc uses 0.8 for both).
    noise_easy / noise_hard:
        Rendering noise for easy and corner-case pairs.
    label_noise_train / label_noise_eval:
        Probability of a flipped label in train and valid/test splits.
    """

    corner_frac_pos: float = 0.5
    corner_frac_neg: float = 0.5
    noise_easy: float = 0.3
    noise_hard: float = 0.8
    label_noise_train: float = 0.0
    label_noise_eval: float = 0.0
    code_dropout: float = 0.0


class RecordRenderer(Protocol):
    """Renders one view of a catalog entity as a :class:`Record`."""

    def __call__(
        self,
        entity: object,
        rng: np.random.Generator,
        noise: float,
        view: str,
        code_dropout: float = 0.0,
    ) -> Record: ...


def build_split(
    name: str,
    n_pos: int,
    n_neg: int,
    profile: HardnessProfile,
    sample_entity: Callable[[], object],
    sample_sibling: Callable[[object, int], object],
    render: RecordRenderer,
    seed: int,
    is_train: bool,
) -> Split:
    """Build one split with exactly *n_pos* positives and *n_neg* negatives.

    Labels record the *annotated* class, so the split statistics match
    Table 1 exactly.  A fraction of pairs (per the profile's label-noise
    rate) has *content* that contradicts its annotation — an
    annotated-positive built from two different entities, or an
    annotated-negative built from the same entity — exactly like the
    annotation noise of web-scraped benchmarks.
    """
    rng = derive_rng(seed, "split", name)
    label_noise = profile.label_noise_train if is_train else profile.label_noise_eval
    # Annotation errors occur in similar absolute numbers per class; applying
    # the positive-class rate to the (much larger) negative class would
    # contaminate the match signal far beyond what real benchmarks show.
    label_noise_neg = label_noise * (n_pos / n_neg) if n_neg else 0.0
    pairs: list[EntityPair] = []

    for i in range(n_pos):
        corner = rng.random() < profile.corner_frac_pos
        noise = profile.noise_hard if corner else profile.noise_easy
        entity = sample_entity()
        mislabeled = rng.random() < label_noise
        if mislabeled:  # annotated positive, but actually two entities
            other = sample_sibling(entity, i)
        else:
            other = entity
        # Asymmetric views: one source renders cleanly, the other carries
        # the full corruption budget (clean shop vs. messy shop).
        left = render(entity, rng, noise * 0.5, view="a",
                      code_dropout=profile.code_dropout)
        right = render(other, rng, noise, view="b",
                       code_dropout=profile.code_dropout)
        pairs.append(
            EntityPair(
                pair_id=f"{name}-p{i}",
                left=left,
                right=right,
                label=True,
                corner_case=corner,
                source="seed-mislabeled" if mislabeled else "seed",
            )
        )

    for i in range(n_neg):
        corner = rng.random() < profile.corner_frac_neg
        entity = sample_entity()
        mislabeled = rng.random() < label_noise_neg
        if mislabeled:  # annotated negative, but actually the same entity
            other = entity
            noise = profile.noise_easy
        elif corner:
            other = sample_sibling(entity, i)
            noise = profile.noise_easy  # hard negatives look clean but differ subtly
        else:
            other = sample_entity()
            noise = profile.noise_easy
        left = render(entity, rng, noise, view="a",
                      code_dropout=profile.code_dropout)
        right = render(other, rng, noise, view="b",
                       code_dropout=profile.code_dropout)
        pairs.append(
            EntityPair(
                pair_id=f"{name}-n{i}",
                left=left,
                right=right,
                label=False,
                corner_case=corner,
                source="seed-mislabeled" if mislabeled else "seed",
            )
        )

    order = rng.permutation(len(pairs))
    return Split(name=name, pairs=[pairs[int(j)] for j in order])
