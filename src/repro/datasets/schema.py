"""Core dataset data structures: records, pairs, splits, datasets.

A :class:`Record` is one entity description (a bag of attributes plus a
pre-rendered surface ``description``).  An :class:`EntityPair` is a labelled
candidate pair — the unit every experiment in the paper operates on.  A
:class:`Dataset` bundles the train/validation/test :class:`Split` objects of
one benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterator, Mapping, Sequence

__all__ = ["Record", "EntityPair", "Split", "SplitStats", "Dataset"]


@dataclass(frozen=True)
class Record:
    """One entity description.

    Attributes
    ----------
    record_id:
        Unique id within the dataset side it came from.
    attributes:
        Structured attribute dict (e.g. brand/model/specs or
        authors/title/venue/year).  Only used by generators and explainers;
        models see the serialized ``description``.
    description:
        The serialized surface form shown to the model.
    """

    record_id: str
    attributes: Mapping[str, str]
    description: str

    def with_description(self, description: str) -> "Record":
        """Return a copy with a different surface form."""
        return replace(self, description=description)


@dataclass(frozen=True)
class EntityPair:
    """A labelled candidate pair of entity descriptions."""

    pair_id: str
    left: Record
    right: Record
    label: bool
    #: True when the pair is a corner case (hard positive or hard negative).
    corner_case: bool = False
    #: Optional provenance tag ("seed", "generated:brief", ...).
    source: str = "seed"

    @property
    def key(self) -> tuple[str, str]:
        """Identity key used for deduplication."""
        return (self.left.description, self.right.description)


@dataclass(frozen=True)
class SplitStats:
    """Positive/negative counts of a split (one row fragment of Table 1)."""

    positives: int
    negatives: int

    @property
    def total(self) -> int:
        return self.positives + self.negatives


@dataclass
class Split:
    """A named collection of labelled pairs (train/valid/test)."""

    name: str
    pairs: list[EntityPair] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.pairs)

    def __iter__(self) -> Iterator[EntityPair]:
        return iter(self.pairs)

    def __getitem__(self, index: int) -> EntityPair:
        return self.pairs[index]

    @property
    def stats(self) -> SplitStats:
        positives = sum(1 for p in self.pairs if p.label)
        return SplitStats(positives=positives, negatives=len(self.pairs) - positives)

    def labels(self) -> list[bool]:
        return [p.label for p in self.pairs]

    def subset(self, indices: Sequence[int], name: str | None = None) -> "Split":
        """Return a new split containing ``pairs[i]`` for each index."""
        return Split(name=name or self.name, pairs=[self.pairs[i] for i in indices])

    def filtered(self, keep: Sequence[bool], name: str | None = None) -> "Split":
        """Return a new split keeping pairs where ``keep[i]`` is true."""
        if len(keep) != len(self.pairs):
            raise ValueError(
                f"keep mask length {len(keep)} != split size {len(self.pairs)}"
            )
        pairs = [p for p, k in zip(self.pairs, keep) if k]
        return Split(name=name or self.name, pairs=pairs)

    def extended(self, extra: Sequence[EntityPair], name: str | None = None) -> "Split":
        """Return a new split with *extra* pairs appended."""
        return Split(name=name or self.name, pairs=list(self.pairs) + list(extra))


@dataclass
class Dataset:
    """A benchmark: train/validation/test splits plus metadata."""

    name: str
    domain: str  # "product" or "scholar"
    train: Split
    valid: Split
    test: Split

    def split(self, which: str) -> Split:
        """Return the split named ``train``/``valid``/``test``."""
        try:
            return {"train": self.train, "valid": self.valid, "test": self.test}[which]
        except KeyError:
            raise ValueError(f"unknown split {which!r}") from None

    @property
    def splits(self) -> dict[str, Split]:
        return {"train": self.train, "valid": self.valid, "test": self.test}

    def stats(self) -> dict[str, SplitStats]:
        """Table-1-style statistics for every split."""
        return {name: split.stats for name, split in self.splits.items()}
