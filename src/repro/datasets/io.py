"""JSONL import/export for datasets and splits.

The on-disk format mirrors common EM benchmark releases: one JSON object
per line with the two serialized descriptions, the label, and provenance
metadata.  Round-tripping a split through JSONL is lossless for everything
experiments rely on (descriptions, attributes, labels, corner-case flags).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from repro.datasets.schema import Dataset, EntityPair, Record, Split

__all__ = ["write_split_jsonl", "read_split_jsonl", "write_dataset", "read_dataset"]


def _pair_to_obj(pair: EntityPair) -> dict:
    return {
        "pair_id": pair.pair_id,
        "label": int(pair.label),
        "corner_case": pair.corner_case,
        "source": pair.source,
        "left": {
            "record_id": pair.left.record_id,
            "description": pair.left.description,
            "attributes": dict(pair.left.attributes),
        },
        "right": {
            "record_id": pair.right.record_id,
            "description": pair.right.description,
            "attributes": dict(pair.right.attributes),
        },
    }


def _record_from_obj(obj: dict) -> Record:
    return Record(
        record_id=obj["record_id"],
        attributes=obj.get("attributes", {}),
        description=obj["description"],
    )


def _pair_from_obj(obj: dict) -> EntityPair:
    return EntityPair(
        pair_id=obj["pair_id"],
        left=_record_from_obj(obj["left"]),
        right=_record_from_obj(obj["right"]),
        label=bool(obj["label"]),
        corner_case=bool(obj.get("corner_case", False)),
        source=obj.get("source", "seed"),
    )


def write_split_jsonl(split: Split, path: str | Path) -> None:
    """Write one split as JSONL (one pair per line)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        for pair in split:
            handle.write(json.dumps(_pair_to_obj(pair), sort_keys=True) + "\n")


def read_split_jsonl(path: str | Path, name: str | None = None) -> Split:
    """Read a split written by :func:`write_split_jsonl`."""
    path = Path(path)
    pairs: list[EntityPair] = []
    with path.open("r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                pairs.append(_pair_from_obj(json.loads(line)))
            except (json.JSONDecodeError, KeyError) as exc:
                raise ValueError(f"{path}:{line_no}: malformed pair record") from exc
    return Split(name=name or path.stem, pairs=pairs)


def write_dataset(dataset: Dataset, directory: str | Path) -> None:
    """Write all three splits of *dataset* into *directory*."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    meta = {"name": dataset.name, "domain": dataset.domain}
    (directory / "meta.json").write_text(json.dumps(meta, indent=2))
    for split_name, split in dataset.splits.items():
        write_split_jsonl(split, directory / f"{split_name}.jsonl")


def read_dataset(directory: str | Path) -> Dataset:
    """Read a dataset written by :func:`write_dataset`."""
    directory = Path(directory)
    meta = json.loads((directory / "meta.json").read_text())
    splits = {
        split_name: read_split_jsonl(directory / f"{split_name}.jsonl", split_name)
        for split_name in ("train", "valid", "test")
    }
    return Dataset(
        name=meta["name"],
        domain=meta["domain"],
        train=splits["train"],
        valid=splits["valid"],
        test=splits["test"],
    )


def iter_descriptions(pairs: Iterable[EntityPair]) -> Iterable[str]:
    """Yield every description appearing in *pairs* (left then right)."""
    for pair in pairs:
        yield pair.left.description
        yield pair.right.description
