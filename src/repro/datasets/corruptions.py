"""Surface-form rendering and corruption of catalog entities.

Positives in real EM benchmarks are two *differently rendered* descriptions
of the same entity (different shops / different bibliographic databases).
This module turns a catalog entity into a noisy surface string.  The
``noise`` level (0..1) controls how aggressively the rendering deviates
from the canonical form; per-dataset hardness profiles choose it.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.catalog import PaperEntity, ProductEntity, SoftwareEntity

__all__ = [
    "render_product",
    "render_software",
    "render_paper",
    "typo",
]

_NOISE_WORDS = [
    "new", "oem", "genuine", "original", "retail", "bulk", "2-pack",
    "free shipping", "w/", "incl.", "special offer", "open box",
]

_TYPE_ABBREV = {
    "stereo headset": "stereo",
    "mono headset": "mono",
    "wireless headset": "wireless",
    "multifunction printer": "mfp",
    "digital camera": "digicam",
    "running shoe": "runner",
    "usb flash drive": "usb stick",
    "external drive": "ext. drive",
}

_PLATFORM_ALIASES = {
    "windows": ["windows", "win", "for windows", "pc"],
    "mac": ["mac", "macintosh", "for mac"],
    "win/mac": ["win/mac", "hybrid", "pc/mac"],
    "windows xp": ["windows xp", "win xp", "xp"],
    "windows vista": ["windows vista", "vista"],
}

_EDITION_ALIASES = {
    "standard": ["standard", "std"],
    "professional": ["professional", "pro", "prof."],
    "home": ["home", "home edition"],
    "premium": ["premium", "prem"],
    "deluxe": ["deluxe", "dlx"],
    "ultimate": ["ultimate", "ult"],
    "student": ["student", "student edition", "academic"],
    "small business": ["small business", "sb edition", "smb"],
}


def typo(word: str, rng: np.random.Generator) -> str:
    """Introduce a single character-level typo into *word*."""
    if len(word) < 3:
        return word
    pos = int(rng.integers(1, len(word) - 1))
    op = rng.random()
    if op < 0.34:  # deletion
        return word[:pos] + word[pos + 1:]
    if op < 0.67:  # transposition
        return word[:pos] + word[pos + 1] + word[pos] + word[pos + 2:]
    # duplication
    return word[:pos] + word[pos] + word[pos:]


def _maybe_typo(text: str, rng: np.random.Generator, prob: float) -> str:
    words = text.split()
    out = []
    for word in words:
        # Identifying tokens (model codes, versions) rarely carry typos in
        # real listings; corrupting them would destroy the match signal.
        effective = prob * 0.25 if any(c.isdigit() for c in word) else prob
        if rng.random() < effective:
            out.append(typo(word, rng))
        else:
            out.append(word)
    return " ".join(out)


def render_product(
    entity: ProductEntity,
    rng: np.random.Generator,
    noise: float,
    code_dropout: float = 0.0,
) -> tuple[str, dict[str, str]]:
    """Render a product title the way one particular shop would.

    Returns the surface string and the structured attributes it exposes
    (used by dataset builders and the explanation generator).
    """
    brand = entity.brand
    line = entity.line
    code = entity.model_code
    ptype = entity.product_type
    spec = entity.spec

    # Style choices that vary between shops.
    if rng.random() < 0.3 + 0.3 * noise:
        brand = brand.upper() if rng.random() < 0.5 else brand.lower()
    if rng.random() < 0.25 * noise and ptype in _TYPE_ABBREV:
        ptype = _TYPE_ABBREV[ptype]
    include_sku = rng.random() < 0.35
    include_spec = rng.random() > 0.2 * noise
    include_type = rng.random() > 0.25 * noise
    drop_brand = rng.random() < 0.1 * noise
    # Many real listings omit the model number entirely — the single most
    # identifying token — which is a dominant source of benchmark hardness.
    drop_code = rng.random() < code_dropout

    parts: list[str] = []
    if not drop_brand:
        parts.append(brand)
    if drop_code:
        parts.append(line)
    else:
        parts.append(f"{line} {code}" if rng.random() < 0.7 else f"{line}-{code}")
    if include_type:
        parts.append(ptype)
    if include_spec:
        parts.append(spec)
    if include_sku:
        parts.append(f"({entity.sku})")
    if rng.random() < 0.3 * noise:
        parts.append(str(rng.choice(_NOISE_WORDS)))
    if rng.random() < 0.4:  # some shops reorder type/spec before the line
        head, tail = parts[:1], parts[1:]
        rng.shuffle(tail)
        parts = head + tail

    title = " ".join(parts)
    title = _maybe_typo(title, rng, prob=0.06 * noise)

    attributes = {
        "brand": entity.brand,
        "model": f"{entity.line} {entity.model_code}",
        "type": entity.product_type,
        "spec": entity.spec if include_spec else "",
        "sku": entity.sku if include_sku else "",
        "category": entity.category,
    }
    return title, attributes


def render_software(
    entity: SoftwareEntity, rng: np.random.Generator, noise: float
) -> tuple[str, dict[str, str]]:
    """Render a software product title (Amazon-Google style).

    The discriminative signal (version/edition) is frequently reordered or
    aliased, which is what makes the Amazon-Google benchmark hard.
    """
    vendor = entity.vendor
    product = entity.product
    edition = str(rng.choice(_EDITION_ALIASES[entity.edition]))
    platform = str(rng.choice(_PLATFORM_ALIASES[entity.platform]))
    version = entity.version

    include_platform = rng.random() < 0.55
    include_sku = rng.random() < 0.2
    drop_vendor = rng.random() < 0.15 * noise
    drop_edition = rng.random() < 0.2 * noise

    parts: list[str] = []
    if not drop_vendor:
        parts.append(vendor)
    parts.append(product)
    tail = [version]
    if not drop_edition:
        tail.append(edition)
    if include_platform:
        tail.append(platform)
    rng.shuffle(tail)
    parts.extend(tail)
    if include_sku:
        parts.append(f"[{entity.sku}]")

    title = " ".join(parts).lower()
    title = _maybe_typo(title, rng, prob=0.05 * noise)

    attributes = {
        "vendor": entity.vendor,
        "product": entity.product,
        "edition": entity.edition if not drop_edition else "",
        "version": entity.version,
        "platform": entity.platform if include_platform else "",
    }
    return title, attributes


def _format_author(name: str, style: str) -> str:
    first, _, last = name.partition(" ")
    if style == "full":
        return name
    if style == "initial":
        return f"{first[0]}. {last}"
    if style == "last-first":
        return f"{last}, {first[0]}."
    return name


def render_paper(
    entity: PaperEntity, rng: np.random.Generator, noise: float
) -> tuple[str, dict[str, str]]:
    """Render a bibliographic entry the way one database would.

    DBLP is clean and complete; ACM is clean; Google Scholar truncates
    author lists, abbreviates venues inconsistently and drops years — the
    ``noise`` level expresses that difference.
    """
    style = str(rng.choice(["full", "initial", "last-first"]))
    authors = [_format_author(a, style) for a in entity.authors]
    if len(authors) > 2 and rng.random() < 0.4 * noise:
        authors = authors[:2] + ["et al"]
    if rng.random() < 0.25 * noise:
        rng.shuffle(authors)
    author_str = ", ".join(authors)

    title = entity.title
    title = _maybe_typo(title, rng, prob=0.04 * noise)
    if rng.random() < 0.2 * noise:
        words = title.split()
        if len(words) > 4:
            title = " ".join(words[: len(words) - int(rng.integers(1, 3))])

    if rng.random() < 0.5:
        venue = entity.venue_abbrev
    else:
        venue = entity.venue_full
    if rng.random() < 0.3 * noise:
        venue = ""

    year = str(entity.year)
    if rng.random() < 0.25 * noise:
        year = ""

    attributes = {
        "authors": author_str,
        "title": title,
        "venue": venue,
        "year": year,
    }
    return "", attributes  # papers are serialized field-wise, not as a title
