"""Named dataset loaders with caching and Table-1 statistics."""

from __future__ import annotations

from functools import lru_cache
from typing import Callable

from repro.datasets.products import (
    build_abt_buy,
    build_amazon_google,
    build_walmart_amazon,
    build_wdc,
)
from repro.datasets.scholar import build_dblp_acm, build_dblp_scholar
from repro.datasets.schema import Dataset

__all__ = [
    "DATASET_NAMES",
    "PRODUCT_DATASETS",
    "SCHOLAR_DATASETS",
    "SHORT_NAMES",
    "dataset_domain",
    "load_dataset",
    "table1_statistics",
]

_BUILDERS: dict[str, Callable[[], Dataset]] = {
    "wdc-small": lambda: build_wdc("small"),
    "wdc-medium": lambda: build_wdc("medium"),
    "wdc-large": lambda: build_wdc("large"),
    "abt-buy": build_abt_buy,
    "amazon-google": build_amazon_google,
    "walmart-amazon": build_walmart_amazon,
    "dblp-scholar": build_dblp_scholar,
    "dblp-acm": build_dblp_acm,
}

DATASET_NAMES: tuple[str, ...] = tuple(_BUILDERS)

#: Datasets per topical domain (the WDC default used in experiments is small).
PRODUCT_DATASETS = ("abt-buy", "amazon-google", "walmart-amazon", "wdc-small")
SCHOLAR_DATASETS = ("dblp-acm", "dblp-scholar")

#: Column labels used in the paper's tables.
SHORT_NAMES = {
    "abt-buy": "A-B",
    "amazon-google": "A-G",
    "walmart-amazon": "W-A",
    "wdc-small": "WDC",
    "wdc-medium": "WDC",
    "wdc-large": "WDC",
    "dblp-acm": "D-A",
    "dblp-scholar": "D-S",
}


@lru_cache(maxsize=None)
def load_dataset(name: str) -> Dataset:
    """Load (and cache) the benchmark named *name*.

    Valid names: ``wdc-small``, ``wdc-medium``, ``wdc-large``, ``abt-buy``,
    ``amazon-google``, ``walmart-amazon``, ``dblp-scholar``, ``dblp-acm``.
    """
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise ValueError(
            f"unknown dataset {name!r}; valid names: {', '.join(DATASET_NAMES)}"
        ) from None
    return builder()


def dataset_domain(name: str) -> str:
    """Topical domain ('product' or 'scholar') of a dataset name."""
    if name.startswith(("wdc", "abt", "amazon", "walmart")):
        return "product"
    if name.startswith("dblp"):
        return "scholar"
    raise ValueError(f"unknown dataset {name!r}")


def table1_statistics() -> dict[str, dict[str, tuple[int, int]]]:
    """Per-dataset (positives, negatives) for each split — the paper's Table 1."""
    stats: dict[str, dict[str, tuple[int, int]]] = {}
    for name in DATASET_NAMES:
        dataset = load_dataset(name)
        stats[name] = {
            split_name: (split.stats.positives, split.stats.negatives)
            for split_name, split in dataset.splits.items()
        }
    return stats
