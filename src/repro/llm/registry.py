"""Model personas: the four LLMs of the paper as capability profiles.

A persona captures everything that differs between the paper's models
*before any fine-tuning*:

* how much "pretraining" shaped the prior matching head
  (``pretrain_pairs``, ``prior_noise``),
* how faithfully the model perceives subtle evidence such as model-code
  or software-version differences (``subtle_fidelity`` — this is what makes
  Amazon-Google unlearnable for Llama-8B but learnable for GPT-4o-mini),
* per-pair perception noise and per-prompt bias (prompt sensitivity),
* zero-shot answer-format discipline (``format_compliance``),
* how destructive fine-tuning is to the frozen prior
  (``ft_instability`` — large models with strong priors lose more).

The four profiles were calibrated once against the paper's **zero-shot**
rows of Table 2 (see EXPERIMENTS.md); everything downstream is emergent.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["PersonaProfile", "PERSONAS", "MODEL_NAMES", "get_persona", "get_model"]


@dataclass(frozen=True)
class PersonaProfile:
    """Static capability profile of one simulated LLM."""

    name: str
    display: str
    #: "open-source" models run locally with LoRA; "hosted" models go through
    #: the simulated OpenAI-style fine-tuning API (different defaults and
    #: checkpoint limits).
    kind: str
    #: Number of pretraining pairs the prior head was fitted on.
    pretrain_pairs: int
    #: Relative weight corruption of the fitted prior head.
    prior_noise: float
    #: Observation fidelity on generic features (1 = perfect).
    generic_fidelity: float
    #: Observation fidelity on subtle features (codes/versions/editions...).
    subtle_fidelity: float
    #: Std-dev of deterministic per-pair logit noise.
    perception_noise: float
    #: Std-dev of per-prompt bias (drives zero-shot prompt sensitivity).
    prompt_bias_sigma: float
    #: Probability that a zero-shot answer to a *free* prompt is parseable.
    format_compliance: float
    #: Interference of fine-tuning with the frozen prior (forgetting).
    ft_instability: float
    #: LoRA adapter logit scale relative to the prior (hosted models use the
    #: provider pipeline, which regularizes harder).
    adapter_scale: float = 1.0
    #: per-feature-group multiplier on the fitted prior weights — how well
    #: the model's pretraining covered that kind of evidence (e.g. the Llama
    #: models are noticeably weaker on bibliographic data zero-shot).
    group_skill: dict[str, float] = field(default_factory=dict)
    #: additive corrections to individual fitted prior weights — systematic
    #: zero-shot miscalibrations, e.g. a negative shift on ``fielded_both``
    #: models a persona that under-predicts matches on bibliographic pairs.
    feature_bias: dict[str, float] = field(default_factory=dict)
    #: multiplier on perception noise for fielded (bibliographic) records —
    #: long structured records are easier to read than cryptic product titles.
    scholar_noise_factor: float = 1.0
    #: fraction of general-mixture examples the provider's fine-tuning
    #: pipeline replays alongside the user's training set (hosted providers
    #: mix in general data to protect broad capabilities; 0 = none).
    replay_fraction: float = 0.0
    #: per-group observation-fidelity overrides (take precedence over
    #: generic_fidelity; subtle features use min(subtle, group override)).
    group_fidelity: dict[str, float] = field(default_factory=dict)
    #: per-group multiplier on the prior weight-noise (how *consistently*
    #: pretraining covered that evidence; < 1 = cleaner than average).
    group_noise: dict[str, float] = field(default_factory=dict)
    seed: int = 0
    extra: dict = field(default_factory=dict)


PERSONAS: dict[str, PersonaProfile] = {
    "llama-3.1-8b": PersonaProfile(
        name="llama-3.1-8b",
        display="Llama 8B",
        kind="open-source",
        pretrain_pairs=700,
        prior_noise=0.38,
        generic_fidelity=0.92,
        subtle_fidelity=0.22,
        perception_noise=0.95,
        prompt_bias_sigma=1.5,
        format_compliance=0.985,
        ft_instability=0.3,
        adapter_scale=1.0,
        feature_bias={"fielded_both": -0.3},
        scholar_noise_factor=2.0,
        group_fidelity={"scholar": 0.85},
        group_noise={"scholar": 0.15},
        seed=81,
    ),
    "llama-3.1-70b": PersonaProfile(
        name="llama-3.1-70b",
        display="Llama 70B",
        kind="open-source",
        pretrain_pairs=4000,
        prior_noise=0.12,
        generic_fidelity=0.97,
        subtle_fidelity=0.85,
        perception_noise=0.70,
        prompt_bias_sigma=0.55,
        format_compliance=0.99,
        ft_instability=0.3,
        adapter_scale=0.1,
        feature_bias={"fielded_both": -3.5},
        seed=70,
    ),
    "gpt-4o-mini": PersonaProfile(
        name="gpt-4o-mini",
        display="gpt-4o-m",
        kind="hosted",
        pretrain_pairs=6000,
        prior_noise=0.20,
        generic_fidelity=0.99,
        subtle_fidelity=0.72,
        perception_noise=0.60,
        prompt_bias_sigma=0.28,
        format_compliance=1.0,
        ft_instability=1.6,
        replay_fraction=0.01,
        group_skill={"software": 0.45},
        feature_bias={"fielded_both": -0.65},
        scholar_noise_factor=0.8,
        seed=40,
    ),
    "gpt-4o": PersonaProfile(
        name="gpt-4o",
        display="gpt-4o",
        kind="hosted",
        pretrain_pairs=12000,
        prior_noise=0.07,
        generic_fidelity=1.0,
        subtle_fidelity=0.9,
        perception_noise=0.38,
        prompt_bias_sigma=0.22,
        format_compliance=1.0,
        ft_instability=0.03,
        adapter_scale=0.25,
        replay_fraction=0.02,
        group_skill={"software": 1.0},
        feature_bias={"fielded_both": -3.5},
        seed=4,
    ),
}

MODEL_NAMES: tuple[str, ...] = tuple(PERSONAS)

#: Aliases matching the paper's exact model identifiers.
_ALIASES = {
    "meta-llama-3.1-8b-instruct": "llama-3.1-8b",
    "meta-llama-3.1-70b-instruct": "llama-3.1-70b",
    "gpt-4o-mini-2024-07-18": "gpt-4o-mini",
    "gpt-4o-2024-08-06": "gpt-4o",
    "llama-8b": "llama-3.1-8b",
    "llama-70b": "llama-3.1-70b",
}


def get_persona(name: str) -> PersonaProfile:
    """Look up a persona by canonical name or paper alias."""
    key = name.lower()
    key = _ALIASES.get(key, key)
    try:
        return PERSONAS[key]
    except KeyError:
        raise ValueError(
            f"unknown model {name!r}; valid: {', '.join(MODEL_NAMES)}"
        ) from None


def get_model(name: str):
    """Build (and cache) the zero-shot :class:`~repro.llm.model.ChatModel`."""
    from repro.llm.model import build_model  # local import avoids a cycle

    return build_model(get_persona(name).name)
