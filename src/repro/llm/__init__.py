"""Simulated LLM substrate.

Replaces the paper's Llama-3.1 / GPT-4o models (see DESIGN.md §2).  A
:class:`~repro.llm.model.ChatModel` couples:

* a deterministic **pair-feature representation** (:mod:`repro.llm.features`),
* a persona-specific **representation distortion** and frozen
  **pretrained prior head** (:mod:`repro.llm.prior`),
* a trainable **LoRA adapter** (:mod:`repro.llm.adapter`),
* deterministic temperature-0 **decoding** into natural-language answers
  (:mod:`repro.llm.decoding`) and the Narayan et al. yes/no
  **answer parser** (:mod:`repro.llm.parsing`).
"""

from repro.llm.adapter import LoRAAdapter
from repro.llm.embeddings import EmbeddingModel
from repro.llm.features import FEATURE_NAMES, featurize_pair, featurize_pairs
from repro.llm.incontext import FewShotMatcher
from repro.llm.model import ChatModel
from repro.llm.parsing import parse_yes_no
from repro.llm.registry import MODEL_NAMES, PersonaProfile, get_model, get_persona

__all__ = [
    "ChatModel",
    "EmbeddingModel",
    "FEATURE_NAMES",
    "FewShotMatcher",
    "LoRAAdapter",
    "MODEL_NAMES",
    "PersonaProfile",
    "featurize_pair",
    "featurize_pairs",
    "get_model",
    "get_persona",
    "parse_yes_no",
]
