"""Deterministic (temperature-0) answer realization.

Turns a matching decision into the natural-language completion a chat model
would produce.  Fine-tuned models answer in the exact format they were
trained on ("Yes." / "No.", optionally followed by an explanation in the
style present in their training set).  Zero-shot models are wordier, and
less disciplined personas occasionally hedge on *free* prompts — producing
an answer with no parseable yes/no, exactly the failure mode Narayan-style
parsing has to deal with.
"""

from __future__ import annotations

from repro._util import stable_hash
from repro.llm.registry import PersonaProfile
from repro.prompts.templates import PromptTemplate

__all__ = ["realize_answer", "is_hedged"]

_VERBOSE_YES = (
    "Yes. Both descriptions appear to refer to the same real-world entity: "
    "the identifying attributes line up despite differences in wording.",
    "Yes, these two descriptions most likely denote the same entity — the "
    "key identifiers agree.",
    "Based on the shared identifying details, yes, the two descriptions "
    "refer to the same entity.",
)

_VERBOSE_NO = (
    "No. The descriptions disagree on identifying attributes, so they refer "
    "to different entities.",
    "No, these are different entities — the identifying details do not "
    "line up.",
    "The two descriptions differ in decisive attributes; they are not a "
    "match, no.",
)

_HEDGES = (
    "It is hard to tell from the given descriptions alone; additional "
    "attributes would be needed to decide.",
    "The descriptions are ambiguous — they could plausibly denote a single "
    "entity or two closely related variants.",
    "Without further context the relationship between the two descriptions "
    "remains unclear.",
)


def is_hedged(
    persona: PersonaProfile,
    template: PromptTemplate,
    left: str,
    right: str,
    fine_tuned: bool,
) -> bool:
    """Whether this persona hedges (gives an unparseable answer) here.

    Deterministic per (persona, pair).  Forced prompts and fine-tuned
    models never hedge — fine-tuning teaches the output format, which is
    exactly why the paper observes format discipline after fine-tuning.
    """
    if fine_tuned or template.forced:
        return False
    draw = (
        stable_hash("hedge", persona.name, left, right) % 10_000
    ) / 10_000.0
    return draw >= persona.format_compliance


def realize_answer(
    decision: bool,
    persona: PersonaProfile,
    template: PromptTemplate,
    left: str,
    right: str,
    fine_tuned: bool,
    explanation: str | None = None,
) -> str:
    """Render the completion text for one matching decision."""
    if is_hedged(persona, template, left, right, fine_tuned):
        pick = stable_hash("hedge-text", persona.name, left, right) % len(_HEDGES)
        return _HEDGES[pick]

    if fine_tuned or template.forced:
        answer = "Yes." if decision else "No."
        if explanation:
            return f"{answer} {explanation}"
        return answer

    pool = _VERBOSE_YES if decision else _VERBOSE_NO
    pick = stable_hash("verbose", persona.name, left, right) % len(pool)
    return pool[pick]
