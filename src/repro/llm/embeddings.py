"""Text embedding model (stand-in for the OpenAI embedding space).

Hashed character-trigram term frequencies projected into a dense space with
a seeded random matrix, then L2-normalized.  The paper only needs the
embedding space for nearest-neighbour selection (demonstration selection in
Dimension 2, error-based example selection in §5.3), so any
locality-preserving embedding exercises the same logic.
"""

from __future__ import annotations

import numpy as np

from repro._util import derive_rng, stable_hash
from repro.llm.tokenizer import char_ngrams

__all__ = ["EmbeddingModel"]


class EmbeddingModel:
    """Deterministic text → vector model with cosine-similarity search."""

    def __init__(self, dim: int = 64, buckets: int = 512, seed: int = 7) -> None:
        if dim <= 0 or buckets <= 0:
            raise ValueError("dim and buckets must be positive")
        self.dim = dim
        self._buckets = buckets
        rng = derive_rng(seed, "embedding-projection")
        self._projection = rng.standard_normal((buckets, dim)) / np.sqrt(buckets)
        self._cache: dict[str, np.ndarray] = {}

    def embed(self, text: str) -> np.ndarray:
        """Return the unit-norm embedding of *text* (cached)."""
        vec = self._cache.get(text)
        if vec is None:
            vec = self._embed_uncached(text)
            self._cache[text] = vec
        return vec

    def _embed_uncached(self, text: str) -> np.ndarray:
        counts = np.zeros(self._buckets)
        for gram in char_ngrams(text):
            counts[stable_hash("emb", gram) % self._buckets] += 1.0
        dense = counts @ self._projection
        norm = np.linalg.norm(dense)
        if norm == 0.0:
            return np.zeros(self.dim)
        return dense / norm

    def embed_many(self, texts: list[str]) -> np.ndarray:
        """Embedding matrix (n × dim)."""
        if not texts:
            return np.zeros((0, self.dim))
        return np.stack([self.embed(t) for t in texts])

    @staticmethod
    def cosine(a: np.ndarray, b: np.ndarray) -> float:
        """Cosine similarity of two (already normalized) embeddings."""
        return float(np.dot(a, b))

    def nearest(
        self, query: np.ndarray, corpus: np.ndarray, k: int = 1
    ) -> list[int]:
        """Indices of the *k* corpus rows most similar to *query*."""
        if corpus.shape[0] == 0:
            return []
        scores = corpus @ query
        k = min(k, corpus.shape[0])
        top = np.argpartition(-scores, k - 1)[:k]
        return [int(i) for i in top[np.argsort(-scores[top])]]
