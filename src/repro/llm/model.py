"""The simulated chat LLM.

A :class:`ChatModel` is one persona in one state (zero-shot or fine-tuned).
Fine-tuning never mutates a model: :meth:`ChatModel.fine_tune` returns a
new instance carrying the trained LoRA adapter, the (slightly interfered)
prior, the prompt it was tuned with and the explanation style of its
training set.

Two inference paths exist and agree with each other (tested):

* :meth:`complete` — the chat interface: takes a rendered prompt string,
  recovers the entity descriptions, answers in natural language;
* :meth:`predict_pairs` — the vectorized experiment path used by the
  evaluator and benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import lru_cache
from typing import Sequence

import numpy as np

from repro._util import derive_rng, stable_hash
from repro.datasets.schema import EntityPair, Record, Split
from repro.llm.adapter import LoRAAdapter
from repro.llm.decoding import is_hedged, realize_answer
from repro.llm.parsing import parse_yes_no
from repro.llm.prior import PriorHead, build_prior
from repro.llm.registry import PersonaProfile, get_persona
from repro.prompts.builder import extract_entities, identify_prompt
from repro.prompts.templates import DEFAULT_PROMPT, PromptTemplate
from repro.training.config import FineTuneConfig, defaults_for
from repro.training.trainer import TrainingExample, fine_tune as run_fine_tune

__all__ = ["ChatModel", "build_model"]


@dataclass(frozen=True)
class ChatModel:
    """One simulated LLM (persona + optional fine-tuned adapter)."""

    persona: PersonaProfile
    prior: PriorHead
    #: prior scoring layer actually used (differs from prior.W0 after
    #: fine-tuning interference)
    W0: np.ndarray
    adapter: LoRAAdapter | None = None
    #: the prompt the adapter was trained with (None when zero-shot)
    ft_prompt: PromptTemplate | None = None
    #: explanation style present in the fine-tuning set, if any
    explanation_style: str | None = None
    #: human-readable tag of the training set ("zero-shot", "wdc-small", ...)
    training_set: str = "zero-shot"

    # ------------------------------------------------------------------ api

    @property
    def name(self) -> str:
        return self.persona.name

    @property
    def is_fine_tuned(self) -> bool:
        return self.adapter is not None

    def prompt_bias(self, template: PromptTemplate) -> float:
        """Persona-specific logit shift induced by a prompt's wording."""
        rng = np.random.default_rng(
            stable_hash("prompt-bias", self.persona.name, template.question)
        )
        return float(self.persona.prompt_bias_sigma * rng.standard_normal())

    def logits(
        self,
        pairs: Sequence[EntityPair],
        template: PromptTemplate = DEFAULT_PROMPT,
    ) -> np.ndarray:
        """Raw matching logits for candidate pairs under *template*."""
        pairs = list(pairs)
        if not pairs:
            return np.zeros(0)
        x = self.prior.observe(pairs)
        scores = x @ (self.prior.v @ self.W0)
        scores = scores + x @ self.prior.feature_bias_vector()
        bias = self.prompt_bias(template)
        if self.adapter is not None:
            scores = scores + self.persona.adapter_scale * self.adapter.logit_delta(
                x, self.prior.v
            )
            # Fine-tuning anchors the model to the matching task: wording
            # variations move the logits far less than they do zero-shot
            # (the paper's §3.3 finding).  The fine-tuning prompt's own bias
            # was part of the training forward pass, so it applies in full.
            if self.ft_prompt is not None:
                ft_bias = self.prompt_bias(self.ft_prompt)
                bias = ft_bias + 0.2 * (bias - ft_bias)
        scores = scores + bias
        scores = scores + self.prior.perception_noise(pairs)
        return scores

    def predict_pairs(
        self,
        pairs: Sequence[EntityPair],
        template: PromptTemplate = DEFAULT_PROMPT,
    ) -> np.ndarray:
        """Boolean match predictions *after answer parsing*.

        Hedged (unparseable) zero-shot answers count as non-matches, the
        same convention the evaluator applies to :meth:`complete` output.
        """
        pairs = list(pairs)
        decisions = self.logits(pairs, template) > 0.0
        if not self.is_fine_tuned and not template.forced:
            for i, pair in enumerate(pairs):
                if decisions[i] and is_hedged(
                    self.persona,
                    template,
                    pair.left.description,
                    pair.right.description,
                    fine_tuned=False,
                ):
                    decisions[i] = False
        return decisions

    def complete(self, prompt: str) -> str:
        """Chat interface: answer a rendered matching prompt.

        The question wording is identified against the known templates;
        unknown wordings behave like a free-form custom prompt.
        """
        left, right = extract_entities(prompt)
        template = identify_prompt(prompt)
        if template is None:
            question = prompt.splitlines()[0].strip('" ')
            template = PromptTemplate(name="custom", question=question, forced=False)
        pair = EntityPair(
            pair_id="adhoc",
            left=Record(record_id="adhoc-l", attributes={}, description=left),
            right=Record(record_id="adhoc-r", attributes={}, description=right),
            label=False,
        )
        decision = bool(self.logits([pair], template)[0] > 0.0)
        explanation = None
        if self.explanation_style is not None:
            from repro.core.explanations import render_completion_explanation

            explanation = render_completion_explanation(
                self.explanation_style, left, right, decision
            )
        return realize_answer(
            decision,
            self.persona,
            template,
            left,
            right,
            fine_tuned=self.is_fine_tuned,
            explanation=explanation,
        )

    def answer_pair(
        self, pair: EntityPair, template: PromptTemplate = DEFAULT_PROMPT
    ) -> bool:
        """Single-pair convenience: prompt, complete, parse (None → False)."""
        response = self.complete(template.render(pair.left.description,
                                                 pair.right.description))
        parsed = parse_yes_no(response)
        return bool(parsed)

    # ---------------------------------------------------------- fine-tuning

    def fine_tune(
        self,
        examples: Sequence[TrainingExample],
        valid: Split | None = None,
        template: PromptTemplate = DEFAULT_PROMPT,
        config: FineTuneConfig | None = None,
        training_set: str = "custom",
        explanation_style: str | None = None,
    ) -> tuple["ChatModel", object]:
        """Return (fine-tuned model, FineTuneResult).

        Uses provider defaults for this persona unless *config* overrides.
        Validation (when a split is given) selects the best visible
        checkpoint by F1, replicating the paper's callback setup.
        """
        from repro.eval.metrics import f1_score  # avoid import cycle

        if config is None:
            config = defaults_for(self.persona.kind)

        examples = list(examples)
        if not examples:
            raise ValueError("cannot fine-tune on an empty training set")
        # Provider-side replay: hosted pipelines mix general data into the
        # fine-tuning set to protect broad capabilities (this is what keeps
        # cross-domain performance from collapsing for the GPT models).
        if self.persona.replay_fraction > 0.0 and examples:
            from repro.llm.prior import pretraining_mixture

            mixture = pretraining_mixture()
            n_replay = min(
                int(self.persona.replay_fraction * len(examples)), len(mixture)
            )
            if n_replay > 0:
                rng = derive_rng(config.seed, "replay", self.persona.name)
                chosen = rng.choice(len(mixture), size=n_replay, replace=False)
                examples = examples + [
                    TrainingExample(pair=mixture[int(i)], label=mixture[int(i)].label)
                    for i in chosen
                ]

        validate = None
        if valid is not None and len(valid) > 0:
            valid_pairs = list(valid.pairs)
            valid_labels = np.array(valid.labels(), dtype=bool)

            def validate(adapter: LoRAAdapter) -> float:
                candidate = replace(
                    self,
                    adapter=adapter,
                    ft_prompt=template,
                    training_set=training_set,
                )
                preds = candidate.predict_pairs(valid_pairs, template)
                return f1_score(valid_labels, preds).f1

        from repro.llm.features import featurize_pairs

        phi_train = featurize_pairs([ex.pair for ex in examples])
        usage = np.mean(np.abs(phi_train), axis=0) / _reference_feature_scale()
        usage = np.clip(usage, 0.0, 1.0)

        # Dimension 1: explanations teach the model to read the attribute
        # evidence it rehearses — observation noise on used features drops
        # in proportion to how explicit the explanation style is.
        from repro.core.explanations import EXPLANATION_FIDELITY_GAIN

        gain = EXPLANATION_FIDELITY_GAIN.get(explanation_style, 0.0)
        sigma_scale = self.prior.obs_sigma_scale
        if gain > 0.0:
            new_scale = 1.0 - gain * usage
            sigma_scale = (
                new_scale if sigma_scale is None else sigma_scale * new_scale
            )
        train_prior = replace(
            self.prior, W0=self.W0, obs_sigma_scale=sigma_scale
        )

        result = run_fine_tune(
            prior=train_prior,
            examples=list(examples),
            config=config,
            prompt_bias=self.prompt_bias(template),
            validate=validate,
        )

        # Fine-tuning interference (catastrophic forgetting): knowledge in
        # the frozen head decays toward zero in proportion to how far the
        # adapter moved and how unstable this persona is under fine-tuning.
        # Decay concentrates on evidence that was *not* rehearsed during
        # fine-tuning — feature weights exercised by the training data are
        # continuously re-anchored by the task loss, while unused ones fade.
        # This is the mechanism behind the paper's cross-domain degradation.
        # convex in usage: features exercised at even moderate levels are
        # continuously re-anchored; only truly unrehearsed evidence fades
        fade_per_feature = 0.05 + 0.95 * (1.0 - usage) ** 3

        # A LoRA delta cannot encode behaviour for evidence that never fired
        # during fine-tuning: its projection columns for those features keep
        # their random initialization (they receive no gradient).  Routing
        # real out-of-domain feature values through random directions would
        # be an artefact of the simulator, so those columns are zeroed.
        result.adapter.A[:, usage < 0.02] = 0.0
        w_norm = np.linalg.norm(self.W0)
        # The relative update magnitude saturates: very hard or very large
        # training sets churn the adapter more, but interference with the
        # base model does not grow without bound.
        relative_update = min(result.adapter.update_norm() / max(w_norm, 1e-9), 0.7)
        drift = self.persona.ft_instability * relative_update
        shrink = np.clip(drift * fade_per_feature, 0.0, 0.9)
        W0_new = self.W0 * (1.0 - shrink)[None, :]
        # Interference also degrades how faithfully the model *reads*
        # unrehearsed evidence from now on (both the prior and the adapter
        # consume these degraded readings).
        extra_obs = drift * fade_per_feature * 0.5
        if self.prior.extra_obs_sigma is not None:
            extra_obs = extra_obs + self.prior.extra_obs_sigma
        # Perception specializes to the rehearsed record type: it sharpens
        # in-domain (further when explanations spell the evidence out) and
        # degrades out of domain in proportion to the interference.
        fielded_frac = float(
            np.mean([";" in ex.pair.left.description for ex in examples])
        )
        flat_scale, fielded_scale = self.prior.perception_scale
        ood_factor = min(1.0 + 3.0 * drift, 2.2)
        sharpen = 1.0 - 0.5 * gain
        if fielded_frac < 0.2:
            fielded_scale *= ood_factor
            flat_scale *= sharpen
        elif fielded_frac > 0.8:
            flat_scale *= ood_factor
            fielded_scale *= sharpen
        else:
            flat_scale *= sharpen
            fielded_scale *= sharpen
        prior_new = replace(
            self.prior,
            extra_obs_sigma=extra_obs,
            perception_scale=(flat_scale, fielded_scale),
            obs_sigma_scale=sigma_scale,
        )

        tuned = replace(
            self,
            prior=prior_new,
            W0=W0_new,
            adapter=result.adapter,
            ft_prompt=template,
            explanation_style=explanation_style,
            training_set=training_set,
        )
        return tuned, result

    # -------------------------------------------------------------- helpers

    def describe(self) -> str:
        """One-line human-readable description."""
        state = f"fine-tuned on {self.training_set}" if self.is_fine_tuned else "zero-shot"
        style = f", explanations={self.explanation_style}" if self.explanation_style else ""
        return f"{self.persona.display} ({state}{style})"


@lru_cache(maxsize=1)
def _reference_feature_scale() -> np.ndarray:
    """Typical per-feature magnitude over the broad pretraining mixture.

    Used to decide how *rehearsed* each feature is by a fine-tuning set:
    a feature exercised at its corpus-typical level is fully anchored;
    one that never fires in the training data fades.
    """
    from repro.llm.features import featurize_pairs
    from repro.llm.prior import pretraining_mixture

    phi = featurize_pairs(list(pretraining_mixture()))
    return np.maximum(np.mean(np.abs(phi), axis=0), 1e-6)


@lru_cache(maxsize=None)
def build_model(persona_name: str) -> ChatModel:
    """Build (and cache) the zero-shot model for a persona."""
    persona = get_persona(persona_name)
    prior = build_prior(persona.name)
    return ChatModel(persona=persona, prior=prior, W0=prior.W0.copy())
