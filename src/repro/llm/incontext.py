"""In-context learning: zero-/few-shot matching with demonstrations.

The paper positions fine-tuning against the dominant alternative —
prompt engineering and in-context learning (Narayan et al.; Peeters &
Bizer).  This module provides that alternative so the two regimes can be
compared inside one library.

The simulated mechanism follows what ICL is empirically best at for
classification: **calibration**.  Demonstrations (a) anchor the output
format (no hedging) and (b) let the model infer the decision threshold of
the task from labelled examples — globally for randomly selected
demonstrations, locally per query for nearest-neighbour selection.  The
model's perception of the pair itself does not improve, which is exactly
why fine-tuning outperforms ICL in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.schema import EntityPair, Split
from repro.llm.embeddings import EmbeddingModel
from repro.llm.model import ChatModel
from repro.prompts.templates import DEFAULT_PROMPT, PromptTemplate

__all__ = ["FewShotMatcher", "build_fewshot_prompt"]


def build_fewshot_prompt(
    pair: EntityPair,
    demonstrations: list[EntityPair],
    template: PromptTemplate = DEFAULT_PROMPT,
) -> str:
    """Render a few-shot prompt: labelled demonstrations, then the query."""
    blocks = []
    for demo in demonstrations:
        blocks.append(
            template.render(demo.left.description, demo.right.description)
            + f"\nAnswer: {'Yes.' if demo.label else 'No.'}"
        )
    blocks.append(
        template.render(pair.left.description, pair.right.description)
        + "\nAnswer:"
    )
    return "\n\n".join(blocks)


@dataclass
class FewShotMatcher:
    """Zero-shot model plus in-context demonstrations.

    Parameters
    ----------
    model:
        The (zero-shot) chat model to prompt.
    demonstrations:
        Labelled pool the demonstrations are drawn from (typically a
        training split).
    k:
        Demonstrations per prompt.
    selection:
        "random" — one fixed random draw for every query;
        "knn" — per-query nearest neighbours in the embedding space
        (Narayan et al.'s stronger variant).
    """

    model: ChatModel
    demonstrations: Split
    k: int = 6
    selection: str = "random"
    seed: int = 13
    embedding: EmbeddingModel | None = None

    def __post_init__(self) -> None:
        if self.k <= 0:
            raise ValueError("k must be positive")
        if self.selection not in ("random", "knn"):
            raise ValueError(f"unknown selection strategy {self.selection!r}")
        if self.model.is_fine_tuned:
            raise ValueError(
                "few-shot prompting applies to zero-shot models; "
                "fine-tuned models are queried directly"
            )
        if len(self.demonstrations) < self.k:
            raise ValueError("demonstration pool smaller than k")
        if self.selection == "knn":
            self.embedding = self.embedding or EmbeddingModel()
            self._demo_vectors = self.embedding.embed_many(
                [p.left.description for p in self.demonstrations]
            )

    # ------------------------------------------------------------- internal

    def _random_demos(self) -> list[EntityPair]:
        from repro._util import derive_rng

        rng = derive_rng(self.seed, "fewshot-demos", self.model.name)
        idx = rng.choice(len(self.demonstrations), size=self.k, replace=False)
        return [self.demonstrations[int(i)] for i in idx]

    def _knn_demos(self, pair: EntityPair) -> list[EntityPair]:
        query = self.embedding.embed(pair.left.description)
        neighbours = self.embedding.nearest(query, self._demo_vectors, k=self.k)
        return [self.demonstrations[i] for i in neighbours]

    def _calibration_shift(self, demos: list[EntityPair]) -> float:
        """Threshold shift the model infers from the labelled demonstrations.

        Scans candidate shifts and keeps the one that classifies the
        demonstrations best — the model aligning its own scores with the
        labels it was shown.
        """
        logits = self.model.logits(demos)
        labels = np.array([d.label for d in demos])
        best_shift, best_correct = 0.0, -1
        for shift in np.linspace(-3.0, 3.0, 25):
            correct = int(np.sum((logits + shift > 0) == labels))
            if correct > best_correct:
                best_correct, best_shift = correct, float(shift)
        return best_shift

    # ------------------------------------------------------------ inference

    def predict_pairs(
        self,
        pairs: list[EntityPair],
        template: PromptTemplate = DEFAULT_PROMPT,
    ) -> np.ndarray:
        """Few-shot matching decisions for candidate pairs.

        Demonstrations anchor the output format (no hedged answers) and
        calibrate the decision threshold; knn selection recalibrates per
        query from its neighbourhood.
        """
        logits = self.model.logits(pairs, template)
        if self.selection == "random":
            shift = self._calibration_shift(self._random_demos())
            return logits + shift > 0.0
        decisions = np.empty(len(pairs), dtype=bool)
        for i, pair in enumerate(pairs):
            shift = self._calibration_shift(self._knn_demos(pair))
            decisions[i] = logits[i] + shift > 0.0
        return decisions

    def prompt_for(self, pair: EntityPair) -> str:
        """The full few-shot prompt text for one query (for inspection)."""
        demos = (
            self._knn_demos(pair) if self.selection == "knn" else self._random_demos()
        )
        return build_fewshot_prompt(pair, demos)
