"""Pair-feature representation of two entity descriptions.

This is the simulated LLM's "understanding" of a candidate pair: a fixed
vector of similarity/conflict signals computed from the two surface strings
only (models never see the structured attributes).  Features are grouped
into subspaces:

* ``generic`` — string/token/number overlap signals active in every domain;
* ``product`` — model codes, versions, editions, unit specs, SKUs;
* ``scholar`` — semicolon-field-aware author/title/venue/year signals.

The subspace structure is what makes *in-domain transfer succeed and
cross-domain transfer fail* in the reproduction: an adapter trained on
product pairs learns weights on features that are inactive for scholar
pairs and vice versa (see DESIGN.md §5).

All features are in ``[0, 1]``.  The final component is a constant bias.
"""

from __future__ import annotations

import re
from difflib import SequenceMatcher

import numpy as np

from repro.datasets.schema import EntityPair
from repro.llm.tokenizer import char_ngrams, levenshtein, tokenize

__all__ = [
    "FEATURE_NAMES",
    "FEATURE_GROUPS",
    "NUM_FEATURES",
    "featurize_pair",
    "featurize_pairs",
    "featurize_texts",
    "clear_feature_cache",
]

#: name → subspace group
FEATURE_GROUPS: dict[str, str] = {
    # generic
    "token_jaccard": "generic",
    "token_containment": "generic",
    "char3_cosine": "generic",
    "seq_ratio": "generic",
    "len_ratio": "generic",
    "rare_token_overlap": "generic",
    "numeric_jaccard": "generic",
    "numeric_conflict": "generic",
    "numeric_absent": "generic",
    "first_token_eq": "generic",
    "long_token_overlap": "generic",
    # product
    "code_match": "product",
    "code_conflict": "product",
    "near_code_match": "product",
    "version_match": "software",
    "version_conflict": "software",
    "edition_match": "software",
    "edition_conflict": "software",
    "unit_spec_match": "product",
    "unit_spec_conflict": "product",
    "sku_match": "product",
    "sku_conflict": "product",
    # scholar
    "fielded_both": "scholar",
    "author_overlap": "scholar",
    "author_initial_compat": "scholar",
    "title_field_sim": "scholar",
    "title_field_containment": "scholar",
    "venue_compat": "scholar",
    "venue_conflict": "scholar",
    "year_field_match": "scholar",
    "year_field_conflict": "scholar",
    "etal_present": "scholar",
    # constant
    "bias": "bias",
}

FEATURE_NAMES: tuple[str, ...] = tuple(FEATURE_GROUPS)
NUM_FEATURES = len(FEATURE_NAMES)
_INDEX = {name: i for i, name in enumerate(FEATURE_NAMES)}

_EDITION_CANON = {
    "pro": "professional", "prof": "professional", "professional": "professional",
    "std": "standard", "standard": "standard",
    "home": "home", "prem": "premium", "premium": "premium",
    "dlx": "deluxe", "deluxe": "deluxe",
    "ult": "ultimate", "ultimate": "ultimate",
    "student": "student", "academic": "student",
    "smb": "small-business", "sb": "small-business",
}

_VENUE_ALIASES = {
    "sigmod": {"sigmod", "management of data"},
    "vldb": {"vldb", "very large"},
    "icde": {"icde", "data engineering"},
    "edbt": {"edbt", "extending database"},
    "cikm": {"cikm", "information and knowledge management"},
    "kdd": {"kdd", "knowledge discovery"},
    "tods": {"tods", "transactions on database systems"},
    "tkde": {"tkde", "transactions on knowledge and data engineering"},
}

_VERSION_RE = re.compile(r"^(?:\d{4}|\d+\.\d+|x\d+|v\d+|xi+|xp)$")
_UNIT_RE = re.compile(r"^\d+(?:gb|tb|mp|mm|sp|k|p)$|^\d+-\d+t$")
_SKU_RE = re.compile(r"^\d{3,}(?:-\d{2,}){1,3}$|^\d{5,}$")
_YEAR_RE = re.compile(r"^(19|20)\d{2}$")


def _jaccard(a: set, b: set) -> float:
    if not a and not b:
        return 0.0
    union = len(a | b)
    return len(a & b) / union if union else 0.0


def _containment(a: set, b: set) -> float:
    if not a or not b:
        return 0.0
    return len(a & b) / min(len(a), len(b))


def _is_code(token: str) -> bool:
    has_alpha = any(c.isalpha() for c in token)
    has_digit = any(c.isdigit() for c in token)
    return (has_alpha and has_digit) or (token.isdigit() and 2 <= len(token) <= 4)


def _canon_version(token: str) -> str | None:
    if _VERSION_RE.match(token):
        return token
    return None


def _last_names(field: str) -> set[str]:
    parts = re.split(r"[,;]| and ", field)
    names: set[str] = set()
    for part in parts:
        tokens = [t for t in tokenize(part) if len(t) >= 3 and t != "et" and t != "al"]
        if tokens:
            names.add(tokens[-1])
    return names


def _initials(field: str) -> set[str]:
    parts = re.split(r"[,;]| and ", field)
    out: set[str] = set()
    for part in parts:
        tokens = tokenize(part)
        if len(tokens) >= 2:
            out.add(tokens[0][0] + tokens[-1])
        elif tokens:
            out.add(tokens[0])
    return out


def _venue_key(field: str) -> str | None:
    low = field.lower()
    for key, aliases in _VENUE_ALIASES.items():
        if any(alias in low for alias in aliases):
            return key
    return None


def _expand(tokens: list[str]) -> set[str]:
    """Token set plus sub-tokens of compounds ('pg-730' → 'pg', '730').

    Identifying evidence frequently appears joined in one listing and
    separated in another; comparing on the expanded set recovers it.
    """
    out: set[str] = set(tokens)
    for token in tokens:
        if "-" in token or "/" in token:
            out.update(p for p in re.split(r"[-/]", token) if p)
    return out


def featurize_pair(left: str, right: str) -> np.ndarray:
    """Compute the feature vector for two serialized entity descriptions."""
    phi = np.zeros(NUM_FEATURES)

    tokens_l, tokens_r = tokenize(left), tokenize(right)
    set_l, set_r = _expand(tokens_l), _expand(tokens_r)

    # SKU-like identifiers are compared only via the dedicated sku features;
    # leaving them in the general token sets would contaminate every overlap
    # signal whenever one listing shows the SKU and the other does not.
    skus_l = {t for t in set_l if _SKU_RE.match(t)}
    skus_r = {t for t in set_r if _SKU_RE.match(t)}
    sku_parts_l = {p for t in skus_l for p in re.split(r"[-/]", t)} | skus_l
    sku_parts_r = {p for t in skus_r for p in re.split(r"[-/]", t)} | skus_r
    set_l -= sku_parts_l
    set_r -= sku_parts_r
    tokens_l = [t for t in tokens_l if t not in sku_parts_l]
    tokens_r = [t for t in tokens_r if t not in sku_parts_r]

    phi[_INDEX["token_jaccard"]] = _jaccard(set_l, set_r)
    phi[_INDEX["token_containment"]] = _containment(set_l, set_r)

    ngrams_l, ngrams_r = char_ngrams(left), char_ngrams(right)
    inter = len(ngrams_l & ngrams_r)
    denom = np.sqrt(len(ngrams_l) * len(ngrams_r))
    phi[_INDEX["char3_cosine"]] = inter / denom if denom else 0.0

    phi[_INDEX["seq_ratio"]] = SequenceMatcher(
        None, " ".join(tokens_l), " ".join(tokens_r)
    ).ratio()

    if tokens_l and tokens_r:
        phi[_INDEX["len_ratio"]] = min(len(tokens_l), len(tokens_r)) / max(
            len(tokens_l), len(tokens_r)
        )

    rare_l = {t for t in set_l if len(t) >= 8 or _is_code(t)}
    rare_r = {t for t in set_r if len(t) >= 8 or _is_code(t)}
    phi[_INDEX["rare_token_overlap"]] = _jaccard(rare_l, rare_r)

    nums_l = {t for t in set_l if any(c.isdigit() for c in t)}
    nums_r = {t for t in set_r if any(c.isdigit() for c in t)}
    phi[_INDEX["numeric_jaccard"]] = _jaccard(nums_l, nums_r)
    phi[_INDEX["numeric_conflict"]] = float(
        bool(nums_l) and bool(nums_r) and not (nums_l & nums_r)
    )
    phi[_INDEX["numeric_absent"]] = float(not nums_l and not nums_r)

    if tokens_l and tokens_r:
        phi[_INDEX["first_token_eq"]] = float(tokens_l[0] == tokens_r[0])

    long_l = {t for t in set_l if len(t) >= 5 and t.isalpha()}
    long_r = {t for t in set_r if len(t) >= 5 and t.isalpha()}
    phi[_INDEX["long_token_overlap"]] = _jaccard(long_l, long_r)

    # --- product subspace -------------------------------------------------
    # Fielded (bibliographic) records do not carry model codes, versions or
    # SKUs — digit tokens there are years/pages.  Computing product features
    # on them would leak one domain's evidence slots into the other.
    fields_l = [f.strip() for f in left.split(";")]
    fields_r = [f.strip() for f in right.split(";")]
    fielded = len(fields_l) >= 3 and len(fields_r) >= 3
    if fielded:
        phi[_INDEX["bias"]] = 1.0
        _scholar_features(phi, fields_l, fields_r)
        return phi

    codes_l = {t for t in set_l if _is_code(t) and not _SKU_RE.match(t)}
    codes_r = {t for t in set_r if _is_code(t) and not _SKU_RE.match(t)}
    shared_codes = codes_l & codes_r
    phi[_INDEX["code_match"]] = float(bool(shared_codes))
    phi[_INDEX["code_conflict"]] = float(
        bool(codes_l) and bool(codes_r) and not shared_codes
    )
    near = 0.0
    if codes_l and codes_r and not shared_codes:
        for cl in codes_l:
            for cr in codes_r:
                if levenshtein(cl, cr, cap=1) <= 1:
                    near = 1.0
                    break
            if near:
                break
    phi[_INDEX["near_code_match"]] = near

    vers_l = {t for t in set_l if _canon_version(t)}
    vers_r = {t for t in set_r if _canon_version(t)}
    phi[_INDEX["version_match"]] = float(bool(vers_l & vers_r))
    phi[_INDEX["version_conflict"]] = float(
        bool(vers_l) and bool(vers_r) and not (vers_l & vers_r)
    )

    eds_l = {_EDITION_CANON[t] for t in set_l if t in _EDITION_CANON}
    eds_r = {_EDITION_CANON[t] for t in set_r if t in _EDITION_CANON}
    phi[_INDEX["edition_match"]] = float(bool(eds_l & eds_r))
    phi[_INDEX["edition_conflict"]] = float(
        bool(eds_l) and bool(eds_r) and not (eds_l & eds_r)
    )

    units_l = {t for t in set_l if _UNIT_RE.match(t)}
    units_r = {t for t in set_r if _UNIT_RE.match(t)}
    phi[_INDEX["unit_spec_match"]] = float(bool(units_l & units_r))
    phi[_INDEX["unit_spec_conflict"]] = float(
        bool(units_l) and bool(units_r) and not (units_l & units_r)
    )

    phi[_INDEX["sku_match"]] = float(bool(skus_l & skus_r))
    phi[_INDEX["sku_conflict"]] = float(
        bool(skus_l) and bool(skus_r) and not (skus_l & skus_r)
    )

    phi[_INDEX["bias"]] = 1.0
    return phi


def _scholar_features(phi: np.ndarray, fields_l: list[str], fields_r: list[str]) -> None:
    """Fill the scholar-subspace features of a fielded record pair."""
    phi[_INDEX["fielded_both"]] = 1.0
    phi[_INDEX["author_overlap"]] = _jaccard(
        _last_names(fields_l[0]), _last_names(fields_r[0])
    )
    phi[_INDEX["author_initial_compat"]] = _containment(
        _initials(fields_l[0]), _initials(fields_r[0])
    )
    title_l = set(tokenize(fields_l[1])) if len(fields_l) > 1 else set()
    title_r = set(tokenize(fields_r[1])) if len(fields_r) > 1 else set()
    phi[_INDEX["title_field_sim"]] = _jaccard(title_l, title_r)
    phi[_INDEX["title_field_containment"]] = _containment(title_l, title_r)

    venue_l = _venue_key(fields_l[2]) if len(fields_l) > 2 else None
    venue_r = _venue_key(fields_r[2]) if len(fields_r) > 2 else None
    if venue_l and venue_r:
        phi[_INDEX["venue_compat"]] = float(venue_l == venue_r)
        phi[_INDEX["venue_conflict"]] = float(venue_l != venue_r)

    year_l = next((t for t in tokenize(fields_l[-1]) if _YEAR_RE.match(t)), None)
    year_r = next((t for t in tokenize(fields_r[-1]) if _YEAR_RE.match(t)), None)
    if year_l and year_r:
        phi[_INDEX["year_field_match"]] = float(year_l == year_r)
        phi[_INDEX["year_field_conflict"]] = float(year_l != year_r)

    phi[_INDEX["etal_present"]] = float(
        "et al" in fields_l[0].lower() or "et al" in fields_r[0].lower()
    )


# Process-wide memo keyed by the surface-string pair: overlapping splits
# (filtered/extended training sets, shared test sets) featurize for free.
_CACHE: dict[tuple[str, str], np.ndarray] = {}


def featurize_texts(left: str, right: str) -> np.ndarray:
    """Cached feature vector for a description pair."""
    key = (left, right)
    vec = _CACHE.get(key)
    if vec is None:
        vec = featurize_pair(left, right)
        _CACHE[key] = vec
    return vec


def featurize_pairs(pairs: list[EntityPair]) -> np.ndarray:
    """Feature matrix (n_pairs × NUM_FEATURES) for a list of pairs."""
    if not pairs:
        return np.zeros((0, NUM_FEATURES))
    return np.stack(
        [featurize_texts(p.left.description, p.right.description) for p in pairs]
    )


def clear_feature_cache() -> None:
    """Drop the process-wide feature memo (mainly for tests)."""
    _CACHE.clear()
