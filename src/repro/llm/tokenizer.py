"""Lightweight tokenizer used by the simulated LLM.

Provides word-level tokens (shared with :mod:`repro._util`), character
n-grams for fuzzy similarity, and a crude token-count estimate used for
reporting explanation lengths (the paper reports average explanation
lengths in tokens).
"""

from __future__ import annotations

from repro._util import tokenize_simple

__all__ = ["tokenize", "char_ngrams", "count_tokens", "levenshtein"]


def tokenize(text: str) -> list[str]:
    """Lower-cased word/number tokens."""
    return tokenize_simple(text)


def char_ngrams(text: str, n: int = 3) -> set[str]:
    """Set of character n-grams of the normalized text (padded)."""
    normalized = " ".join(tokenize_simple(text))
    padded = f"  {normalized}  "
    if len(padded) < n:
        return {padded}
    return {padded[i: i + n] for i in range(len(padded) - n + 1)}


def count_tokens(text: str) -> int:
    """Approximate LLM token count (≈ 0.75 words per token heuristic)."""
    words = text.split()
    # Sub-word splitting inflates counts for long/rare words.
    extra = sum(max(0, (len(w) - 1) // 6) for w in words)
    return len(words) + extra


def levenshtein(a: str, b: str, cap: int | None = None) -> int:
    """Edit distance between two short strings.

    ``cap`` allows early exit once the distance provably exceeds it
    (used for the near-model-code feature where only distances ≤ 2 matter).
    """
    if a == b:
        return 0
    if len(a) > len(b):
        a, b = b, a
    if cap is not None and len(b) - len(a) > cap:
        return cap + 1
    previous = list(range(len(a) + 1))
    for j, cb in enumerate(b, start=1):
        current = [j]
        best = j
        for i, ca in enumerate(a, start=1):
            cost = 0 if ca == cb else 1
            value = min(previous[i] + 1, current[i - 1] + 1, previous[i - 1] + cost)
            current.append(value)
            best = min(best, value)
        if cap is not None and best > cap:
            return cap + 1
        previous = current
    return previous[-1]
