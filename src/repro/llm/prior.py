"""Persona representation and pretrained prior head.

The simulated "pretraining" of each persona happens here, once, at model
build time:

1. A broad **pretraining mixture** of moderately hard product / software /
   scholar pairs is generated (shared across personas).
2. The persona's **representation matrix** ``M`` distorts the true feature
   vector: high-fidelity features pass through, low-fidelity (subtle)
   features are attenuated and smeared with generic signals.
3. A logistic-regression **prior head** is fitted on the persona's own view
   of (the first ``pretrain_pairs`` of) the mixture, then corrupted with
   persona weight noise.  Stronger personas = more pretraining + less noise.

The resulting head is frozen; fine-tuning only ever adds a LoRA delta.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro._util import derive_rng, stable_hash
from repro.datasets.build import HardnessProfile, build_split
from repro.datasets.catalog import PaperCatalog, ProductCatalog, SoftwareCatalog
from repro.datasets.schema import EntityPair
from repro.llm.features import FEATURE_GROUPS, FEATURE_NAMES, NUM_FEATURES, featurize_pairs
from repro.llm.registry import PersonaProfile

__all__ = [
    "PriorHead",
    "SUBTLE_FEATURES",
    "build_prior",
    "pretraining_mixture",
    "representation_matrix",
]

#: Features whose perception degrades first on smaller models: fine-grained
#: evidence that requires careful reading of codes, versions and fields.
SUBTLE_FEATURES = (
    "near_code_match",
    "version_match",
    "version_conflict",
    "edition_match",
    "edition_conflict",
    "sku_match",
    "sku_conflict",
    "unit_spec_match",
    "unit_spec_conflict",
    "author_initial_compat",
    "title_field_sim",
    "title_field_containment",
    "venue_compat",
    "venue_conflict",
)

#: Internal width of the scoring layer (the LoRA delta has shape k × d).
HEAD_COMPONENTS = 16


#: Std-dev (in feature units) of per-pair observation noise at fidelity 0.
REPRESENTATION_NOISE = 0.4

#: Observation-noise masks per record type: product/software evidence slots
#: cannot fire on fielded records and vice versa.
_SCHOLAR_MASK = np.array(
    [0.0 if FEATURE_GROUPS[n] in ("product", "software") else 1.0
     for n in FEATURE_NAMES]
)
_PRODUCT_MASK = np.array(
    [0.0 if FEATURE_GROUPS[n] == "scholar" else 1.0 for n in FEATURE_NAMES]
)


@dataclass
class PriorHead:
    """Frozen pretrained scoring head of one persona.

    ``logit = v · (W0 @ observe(pair)) + perception_noise(pair)``

    ``observe`` is the persona's *reading* of a pair: the linear distortion
    ``M φ`` plus per-pair stochastic observation noise on low-fidelity
    features.  The stochastic part is what makes degraded evidence
    genuinely unlearnable — a deterministic linear distortion alone could be
    inverted by the fine-tuned adapter.
    """

    persona: PersonaProfile
    #: representation distortion matrix (d × d)
    M: np.ndarray
    #: frozen scoring layer (k × d)
    W0: np.ndarray
    #: fixed combination vector (k,)
    v: np.ndarray
    #: additional per-feature observation noise accumulated through
    #: fine-tuning interference (None before any fine-tuning)
    extra_obs_sigma: np.ndarray | None = None
    #: perception-noise multipliers per record type (flat, fielded):
    #: fine-tuning sharpens perception on the rehearsed domain (further
    #: with explanation-augmented training) and degrades it out of domain.
    perception_scale: tuple[float, float] = (1.0, 1.0)
    #: per-feature multiplier on observation noise (< 1 after fine-tuning
    #: with explanations taught the model to read that evidence better)
    obs_sigma_scale: np.ndarray | None = None

    def __post_init__(self) -> None:
        # Per-feature observation-noise scale: zero at full fidelity.
        self._obs_sigma = REPRESENTATION_NOISE * (1.0 - np.diag(self.M))
        if self.obs_sigma_scale is not None:
            self._obs_sigma = self._obs_sigma * self.obs_sigma_scale
        if self.extra_obs_sigma is not None:
            self._obs_sigma = self._obs_sigma + self.extra_obs_sigma
        self._obs_cache: dict[tuple[str, str], np.ndarray] = {}

    def represent(self, phi: np.ndarray) -> np.ndarray:
        """Noise-free linear part of the persona view (n × d)."""
        return phi @ self.M.T

    def observe(self, pairs: list[EntityPair]) -> np.ndarray:
        """Persona reading of *pairs*: distorted features + observation noise.

        Deterministic per (persona, pair) and cached, so training and every
        later evaluation see the same reading.  Noise is masked to the
        evidence slots that can be active for the pair's record type — a
        model reading a product title has no bibliographic perception to
        misread, and vice versa.
        """
        phi = featurize_pairs(pairs)
        x = self.represent(phi)
        if not np.any(self._obs_sigma):
            return x
        noise = np.empty_like(x)
        for i, pair in enumerate(pairs):
            key = (pair.left.description, pair.right.description)
            row = self._obs_cache.get(key)
            if row is None:
                rng = np.random.default_rng(
                    stable_hash("observe", self.persona.name, *key)
                )
                row = self._obs_sigma * rng.standard_normal(x.shape[1])
                fielded = ";" in pair.left.description
                row = row * (_SCHOLAR_MASK if fielded else _PRODUCT_MASK)
                self._obs_cache[key] = row
            noise[i] = row
        return x + noise

    def feature_bias_vector(self) -> np.ndarray:
        """Persona miscalibration as a per-feature logit contribution.

        Systematic dispositions (e.g. under-predicting matches on fielded
        bibliographic pairs) are a property of the instruction-tuned model,
        not of the matching knowledge in ``W0`` — so fine-tuning
        interference never erases them.
        """
        bias = np.zeros(NUM_FEATURES)
        for name, delta in self.persona.feature_bias.items():
            bias[FEATURE_NAMES.index(name)] = delta
        return bias

    def logits_for(self, pairs: list[EntityPair]) -> np.ndarray:
        """Prior logits for pairs (no adapter, no prompt bias)."""
        x = self.observe(pairs)
        return x @ (self.v @ self.W0) + x @ self.feature_bias_vector()

    def perception_noise(self, pairs: list[EntityPair]) -> np.ndarray:
        """Deterministic per-pair logit noise (same across prompts).

        Fielded bibliographic records are scaled by the persona's
        ``scholar_noise_factor`` — long structured records are less
        ambiguous to read than cryptic product titles.
        """
        sigma = self.persona.perception_noise
        if sigma == 0.0 or not pairs:
            return np.zeros(len(pairs))
        factor = self.persona.scholar_noise_factor
        flat_scale, fielded_scale = self.perception_scale
        out = np.empty(len(pairs))
        for i, pair in enumerate(pairs):
            rng = np.random.default_rng(
                stable_hash("perception", self.persona.name,
                            pair.left.description, pair.right.description)
            )
            fielded = ";" in pair.left.description
            scale = factor * fielded_scale if fielded else flat_scale
            out[i] = sigma * scale * rng.standard_normal()
        return out


@lru_cache(maxsize=1)
def pretraining_mixture() -> tuple[EntityPair, ...]:
    """The shared pretraining corpus: a broad, moderately hard mixture."""
    profile = HardnessProfile(
        corner_frac_pos=0.4,
        corner_frac_neg=0.4,
        noise_easy=0.35,
        noise_hard=0.8,
        label_noise_train=0.01,
    )
    from repro.datasets.products import _product_renderer, _software_renderer
    from repro.datasets.scholar import _paper_renderer

    seed = 424242
    parts: list[EntityPair] = []

    product_catalog = ProductCatalog(seed + 1)
    parts.extend(
        build_split(
            "pretrain-product", 1200, 2400, profile,
            product_catalog.sample, product_catalog.sibling,
            _product_renderer("pretrain"), seed + 1, is_train=True,
        ).pairs
    )
    software_catalog = SoftwareCatalog(seed + 2)
    parts.extend(
        build_split(
            "pretrain-software", 250, 500, profile,
            software_catalog.sample, software_catalog.sibling,
            _software_renderer(), seed + 2, is_train=True,
        ).pairs
    )
    paper_catalog = PaperCatalog(seed + 3)
    parts.extend(
        build_split(
            "pretrain-scholar", 1200, 2400, profile,
            paper_catalog.sample, paper_catalog.sibling,
            _paper_renderer({"a": 0.7, "b": 1.1}), seed + 3, is_train=True,
        ).pairs
    )

    order = derive_rng(seed, "mixture-order").permutation(len(parts))
    return tuple(parts[int(i)] for i in order)


def representation_matrix(persona: PersonaProfile) -> np.ndarray:
    """Distortion matrix M: φ̃ = M φ.

    Full-fidelity features pass through; degraded features keep only a
    ``fidelity`` fraction of their value and receive a smear of generic
    signals — the model "feels" overall similarity instead of reading the
    precise evidence.
    """
    rng = derive_rng(persona.seed, "representation", persona.name)
    M = np.zeros((NUM_FEATURES, NUM_FEATURES))
    generic_idx = [
        i for i, name in enumerate(FEATURE_NAMES) if FEATURE_GROUPS[name] == "generic"
    ]
    for i, name in enumerate(FEATURE_NAMES):
        group = FEATURE_GROUPS[name]
        if group == "bias":
            fidelity = 1.0
        elif name in SUBTLE_FEATURES:
            fidelity = persona.subtle_fidelity
        else:
            fidelity = persona.generic_fidelity
        if group in persona.group_fidelity:
            fidelity = min(fidelity, persona.group_fidelity[group])
        M[i, i] = fidelity
        if fidelity < 1.0:
            smear = rng.random(len(generic_idx))
            smear = smear / smear.sum() * (1.0 - fidelity) * 0.5
            for j, g in enumerate(generic_idx):
                M[i, g] += smear[j]
    return M


def _fit_logistic(
    X: np.ndarray, y: np.ndarray, l2: float, epochs: int, lr: float, seed: int
) -> np.ndarray:
    """Plain full-batch gradient-descent logistic regression."""
    rng = np.random.default_rng(seed)
    w = 0.01 * rng.standard_normal(X.shape[1])
    n = X.shape[0]
    for _ in range(epochs):
        z = X @ w
        p = 1.0 / (1.0 + np.exp(-np.clip(z, -30, 30)))
        grad = X.T @ (p - y) / n + l2 * w
        w -= lr * grad
    return w


@lru_cache(maxsize=None)
def build_prior(persona_name: str) -> PriorHead:
    """Fit (and cache) the frozen prior head for *persona_name*."""
    from repro.llm.registry import get_persona

    persona = get_persona(persona_name)
    mixture = list(pretraining_mixture())[: persona.pretrain_pairs]
    M = representation_matrix(persona)
    v = np.ones(HEAD_COMPONENTS) / np.sqrt(HEAD_COMPONENTS)
    # The persona pretrains on its *own* noisy readings of the corpus.
    probe = PriorHead(
        persona=persona, M=M, W0=np.zeros((HEAD_COMPONENTS, NUM_FEATURES)), v=v
    )
    X = probe.observe(mixture)
    y = np.array([p.label for p in mixture], dtype=float)

    w = _fit_logistic(X, y, l2=1e-3, epochs=600, lr=1.5, seed=persona.seed)

    # Per-group skill: attenuate evidence the persona's pretraining covered
    # poorly (e.g. bibliographic conventions for the Llama models).
    for group, skill in persona.group_skill.items():
        for i, name in enumerate(FEATURE_NAMES):
            if FEATURE_GROUPS[name] == group:
                w[i] *= skill

    # Persona weight corruption: imperfect pretraining for entity matching.
    # Per-group multipliers let a persona be noisier/cleaner on one kind of
    # evidence than its average (e.g. clean bibliographic conventions).
    rng = derive_rng(persona.seed, "prior-noise", persona.name)
    scale = persona.prior_noise * np.linalg.norm(w) / np.sqrt(w.size)
    noise = scale * rng.standard_normal(w.size)
    for group, mult in persona.group_noise.items():
        for i, name in enumerate(FEATURE_NAMES):
            if FEATURE_GROUPS[name] == group:
                noise[i] *= mult
    w_noisy = w + noise

    # W0 chosen so that v @ W0 == w_noisy, spread over k components so the
    # LoRA delta (k × d) has meaningful room to act.
    W0 = np.outer(v, w_noisy) / float(v @ v)
    return PriorHead(persona=persona, M=M, W0=W0, v=v)
