"""Low-Rank Adaptation (LoRA) of the simulated scoring layer.

The frozen prior scores a pair as ``v · (W0 φ̃)``; fine-tuning adds a
low-rank delta exactly as LoRA does:

    logit = v · ((W0 + (α/r) · B A) φ̃)

with ``A ∈ R^{r×d}`` (Gaussian init) and ``B ∈ R^{k×r}`` (zero init, so the
adapter starts as the identity mapping).  ``α`` and ``r`` are the paper's
hyperparameters (alpha 16, rank 64).  Auxiliary explanation targets are
predicted from the shared projection ``A φ̃`` through a head ``C`` — that
shared projection is the mechanism by which structured explanations
regularize the adapter (DESIGN.md §5).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._util import derive_rng

__all__ = ["LoRAAdapter"]


@dataclass
class LoRAAdapter:
    """Trainable low-rank delta for the scoring layer."""

    rank: int
    alpha: float
    A: np.ndarray  # (rank × d)
    B: np.ndarray  # (k × rank)
    #: auxiliary head (m × rank); empty when no explanation targets are used
    C: np.ndarray = field(default_factory=lambda: np.zeros((0, 0)))

    @classmethod
    def init(
        cls,
        d: int,
        k: int,
        rank: int = 64,
        alpha: float = 16.0,
        aux_dim: int = 0,
        seed: int = 0,
    ) -> "LoRAAdapter":
        """LoRA init: A Gaussian, B zeros (delta starts at zero)."""
        if rank <= 0:
            raise ValueError("rank must be positive")
        rng = derive_rng(seed, "lora-init")
        A = rng.standard_normal((rank, d)) / np.sqrt(rank)
        B = np.zeros((k, rank))
        C = rng.standard_normal((aux_dim, rank)) * 0.01 if aux_dim else np.zeros((0, rank))
        return cls(rank=rank, alpha=alpha, A=A, B=B, C=C)

    @property
    def scaling(self) -> float:
        """LoRA output scaling α/r."""
        return self.alpha / self.rank

    def delta(self) -> np.ndarray:
        """The full-rank view of the adapter delta, (α/r)·B A."""
        return self.scaling * (self.B @ self.A)

    def project(self, x: np.ndarray) -> np.ndarray:
        """Shared low-rank projection A φ̃ (n × rank or rank,)."""
        return x @ self.A.T

    def logit_delta(self, x: np.ndarray, v: np.ndarray) -> np.ndarray:
        """Adapter contribution to the logit for representations *x*."""
        return self.scaling * (self.project(x) @ (self.B.T @ v))

    def aux_predict(self, x: np.ndarray) -> np.ndarray:
        """Auxiliary-target predictions C (A φ̃) — (n × m)."""
        if self.C.shape[0] == 0:
            return np.zeros((x.shape[0] if x.ndim == 2 else 1, 0))
        return self.project(x) @ self.C.T

    def update_norm(self) -> float:
        """Frobenius norm of the delta — how far fine-tuning moved the model."""
        return float(np.linalg.norm(self.delta()))

    def copy(self) -> "LoRAAdapter":
        """Deep copy (used for per-epoch checkpoints)."""
        return LoRAAdapter(
            rank=self.rank,
            alpha=self.alpha,
            A=self.A.copy(),
            B=self.B.copy(),
            C=self.C.copy(),
        )
