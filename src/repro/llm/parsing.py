"""Answer parsing following Narayan et al.

The paper evaluates natural-language model responses by "parsing responses
to contain 'yes' or 'no'".  We implement that rule: scan the response for
an affirmative or negative marker; when both or neither appear, the earlier
one wins; a completely unparseable answer returns None (the evaluator
treats it as a non-match prediction, which matches common practice).
"""

from __future__ import annotations

import re

__all__ = ["parse_yes_no"]

_YES_RE = re.compile(r"\b(yes|match(es)?|same (entity|product|real-world))\b", re.I)
_NO_RE = re.compile(r"\b(no|not? a match|different (entities|products))\b", re.I)


def parse_yes_no(response: str) -> bool | None:
    """Parse a free-form matching answer into True / False / None.

    >>> parse_yes_no("Yes. Both entities refer to ...")
    True
    >>> parse_yes_no("No, the model numbers differ.")
    False
    >>> parse_yes_no("It is unclear.") is None
    True
    """
    yes = _YES_RE.search(response)
    no = _NO_RE.search(response)
    if yes and no:
        return yes.start() < no.start()
    if yes:
        return True
    if no:
        return False
    return None
