"""Answer parsing following Narayan et al.

The paper evaluates natural-language model responses by "parsing responses
to contain 'yes' or 'no'".  We implement that rule: scan the response for
an affirmative or negative marker; when both or neither appear, the earlier
one wins; a completely unparseable answer returns None (the evaluator
treats it as a non-match prediction, which matches common practice).
"""

from __future__ import annotations

import re

__all__ = ["parse_yes_no"]

# Affirmative / negative markers.  Negative phrasings that *contain* an
# affirmative word ("not a match", "does not match", "cannot match") start
# earlier in the response than the embedded affirmative, so the existing
# first-occurrence tie-break resolves them correctly without look-around
# tricks.
_YES_RE = re.compile(
    r"\b(yes|true|match(es|ed|ing)?|identical|equivalent"
    r"|same (entity|entities|product|products|item|items|record|records"
    r"|real-world))\b",
    re.I,
)
_NO_RE = re.compile(
    r"\b(no|false|not? a match(ing)?|mismatch(es|ed)?"
    r"|do(es)? not match|don'?t match|not the same"
    r"|can(not|'?t)( possibly)?( be)?( a)? match(ed|ing)?"
    r"|can(not|'?t)( possibly)? be the same"
    r"|unmatched|non-?match(es|ed|ing)?"
    r"|different (entit(y|ies)|products?|items?|records?))\b",
    re.I,
)

# Idioms that contain a marker word without carrying its meaning: "no
# doubt they match" is an *affirmative* answer, but "\bno\b" would match
# first and flip it.  They are blanked (offset-preserving) before the
# marker scan so the tie-break below only sees genuine markers.
_IDIOM_RE = re.compile(
    r"\b(there (is|'s) )?no (doubt|question)\b|\bwithout (a |any )?doubt\b",
    re.I,
)


def _blank_idioms(response: str) -> str:
    return _IDIOM_RE.sub(lambda m: " " * len(m.group(0)), response)


def parse_yes_no(response: str) -> bool | None:
    """Parse a free-form matching answer into True / False / None.

    >>> parse_yes_no("Yes. Both entities refer to ...")
    True
    >>> parse_yes_no("No, the model numbers differ.")
    False
    >>> parse_yes_no("It is unclear.") is None
    True
    """
    response = _blank_idioms(response)
    yes = _YES_RE.search(response)
    no = _NO_RE.search(response)
    if yes and no:
        return yes.start() < no.start()
    if yes:
        return True
    if no:
        return False
    return None
