"""repro.serve — async request gateway in front of the matching engine.

Composition, front to back::

    request ── router ── admission ── bounded queue ── dispatch ── engine
                 │           │             │               │
              persona     tenant       backpressure    micro-batches
              (404 on     buckets /    (shed or        via Scheduler,
               unknown)   quotas /     degrade when    retry + breaker
                          global cap   full)           + fallback

* :mod:`~repro.serve.protocol` — the request/response schema, with
  absolute deadlines and HTTP-flavoured status codes.
* :mod:`~repro.serve.router` — persona → engine routing over the model
  registry; unknown personas become structured errors, not tracebacks.
* :mod:`~repro.serve.admission` — per-tenant token buckets, lifetime
  quotas, and a global concurrency cap on an injectable clock.
* :mod:`~repro.serve.gateway` — the bounded queue bridging async callers
  to the synchronous engine, with load shedding, graceful degradation to
  the threshold baseline, and deadline propagation.
* :mod:`~repro.serve.stats` — the counter funnel, its conservation
  invariants, and reconciliation against each engine's own counters.
* :mod:`~repro.serve.loadgen` — seeded open-loop load generation for
  the saturation benchmark and deterministic replays.
* :mod:`~repro.serve.chaos` — fault-injected gateway runs with
  transparency, conservation, and degradation-fidelity checks.
"""

from repro.serve.admission import AdmissionController, TenantPolicy, TokenBucket
from repro.serve.chaos import ServeChaosReport, chaos_serve, serve_sweep
from repro.serve.gateway import Gateway, run_inline
from repro.serve.loadgen import (
    Arrival,
    LoadProfile,
    ReplayOutcome,
    generate_arrivals,
    replay,
    replay_simulated,
    summarize,
)
from repro.serve.protocol import (
    DEFAULT_PERSONA,
    STATUS_CODES,
    MatchRequest,
    MatchResponse,
)
from repro.serve.router import PersonaRouter, UnknownPersonaError
from repro.serve.stats import GatewayStats, LaneStats

__all__ = [
    "AdmissionController",
    "Arrival",
    "DEFAULT_PERSONA",
    "Gateway",
    "GatewayStats",
    "LaneStats",
    "LoadProfile",
    "MatchRequest",
    "MatchResponse",
    "PersonaRouter",
    "ReplayOutcome",
    "STATUS_CODES",
    "ServeChaosReport",
    "TenantPolicy",
    "TokenBucket",
    "UnknownPersonaError",
    "chaos_serve",
    "generate_arrivals",
    "replay",
    "replay_simulated",
    "run_inline",
    "serve_sweep",
    "summarize",
]
