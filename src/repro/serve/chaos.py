"""Gateway chaos: fault-injected serving runs with invariant checks.

The serving sibling of :mod:`repro.faults.harness`: one run pushes a
deterministic workload through the whole gateway — router → admission →
queue → dispatch → engine — while a
:class:`~repro.faults.FaultyBackend` sabotages the backend, and checks
the guarantees the gateway adds on top of the engine's:

* **No request lost or answered twice** — one structured response per
  request, correlated by ``request_id``, every status legal.
* **Funnel conservation** — ``admitted = completed + degraded + shed +
  expired`` (total, per tenant, per persona), plus
  ``submitted = errors + rejected + admitted``.
* **Engine reconciliation** — gateway ``completed`` equals each routed
  engine's own ``requests`` counter, and the engine's internal
  conservation equations hold (same checks as the engine chaos harness).
* **Degradation fidelity** — every ``fallback`` (engine) and
  ``degraded`` (gateway) answer equals what a standalone
  :class:`~repro.baselines.threshold.ThresholdMatcher` says.
* **Transparency at rate 0** — the gateway run is byte-identical
  (decision, response, source per request) to the un-wrapped engine fed
  the same pairs in the same chunks.

Time is simulated throughout, so a run is a pure function of
``(seed, fault_rate, workload shape)`` and carries a stable fingerprint.
"""

from __future__ import annotations

import asyncio
from collections import Counter
from dataclasses import dataclass

from repro._util import stable_hash
from repro.baselines.threshold import ThresholdMatcher
from repro.datasets.schema import EntityPair, Record, Split
from repro.faults.clock import ManualClock
from repro.faults.harness import (
    ParityBackend,
    build_chaos_engine,
    chaos_engine_on,
    engine_stats_violations,
    synthetic_pairs,
)
from repro.faults.plan import FAULT_KINDS, FaultPlan
from repro.serve.gateway import Gateway, run_inline
from repro.serve.protocol import MatchRequest, MatchResponse
from repro.serve.router import PersonaRouter

__all__ = ["ServeChaosReport", "chaos_serve", "serve_sweep"]

#: persona every chaos request routes to (capability profile irrelevant —
#: the engine runs over the parity backend, not a model).
_CHAOS_PERSONA = "llama-3.1-8b"

#: sources a gateway response may legally carry.
_VALID_SOURCES = ("backend", "cache", "fallback", "degraded")


@dataclass(frozen=True)
class ServeChaosReport:
    """Outcome of one gateway chaos run (one seed × one fault rate)."""

    seed: int
    fault_rate: float
    requests: int
    #: answers by source ("backend"/"cache"/"fallback"/"degraded").
    sources: dict
    #: responses by status ("ok"/"expired"/...).
    statuses: dict
    #: fault kind → injections performed by the faulty backend.
    injected: dict
    #: gateway counter snapshot.
    gateway_stats: dict
    #: engine counter snapshot (latency stripped, as everywhere).
    engine_stats: dict
    violations: tuple
    fingerprint: str

    @property
    def ok(self) -> bool:
        return not self.violations

    def as_dict(self) -> dict:
        return {
            "kind": "serve",
            "seed": self.seed,
            "fault_rate": self.fault_rate,
            "requests": self.requests,
            "sources": dict(self.sources),
            "statuses": dict(self.statuses),
            "injected": dict(self.injected),
            "gateway_stats": dict(self.gateway_stats),
            "engine_stats": dict(self.engine_stats),
            "violations": list(self.violations),
            "fingerprint": self.fingerprint,
            "ok": self.ok,
        }


def _chaos_requests(
    pairs: "list[tuple[str, str]]", tenants: int
) -> list[MatchRequest]:
    return [
        MatchRequest(
            tenant=f"tenant-{i % tenants}",
            left=left,
            right=right,
            persona=_CHAOS_PERSONA,
            request_id=f"req-{i:06d}",
        )
        for i, (left, right) in enumerate(pairs)
    ]


def _degradation_violations(responses: "list[MatchResponse]") -> list[str]:
    """Fallback/degraded answers must equal the standalone baseline."""
    degraded = [
        r for r in responses if r.source in ("fallback", "degraded")
    ]
    if not degraded:
        return []
    split = Split(
        name="degradation-check",
        pairs=[
            EntityPair(
                pair_id=f"check-{i}",
                left=Record(record_id=f"c-{i}-l", attributes={},
                            description=" ".join(r.request.left.split())),
                right=Record(record_id=f"c-{i}-r", attributes={},
                             description=" ".join(r.request.right.split())),
                label=False,
            )
            for i, r in enumerate(degraded)
        ],
    )
    expected = ThresholdMatcher().predict(split)
    return [
        f"{response.source} decision for {response.request.request_id} is "
        f"{response.decision}, standalone ThresholdMatcher says {bool(want)}"
        for response, want in zip(degraded, expected)
        if response.decision != bool(want)
    ]


def _fingerprint(responses: "list[MatchResponse]") -> str:
    return (
        f"{stable_hash(*((r.status, r.decision, r.source, r.response) for r in responses)):016x}"
    )


def chaos_serve(
    seed: int = 0,
    fault_rate: float = 0.0,
    kinds: tuple = FAULT_KINDS,
    requests: int = 96,
    tenants: int = 2,
    batch_size: int = 8,
) -> ServeChaosReport:
    """One gateway chaos run: fault-injected serving + invariant checks."""
    pairs = synthetic_pairs(requests, seed=seed)
    plan = FaultPlan(seed=seed, fault_rate=fault_rate, kinds=kinds)
    engine, backend, clock = build_chaos_engine(plan)
    router = PersonaRouter(
        default=_CHAOS_PERSONA,
        personas=(_CHAOS_PERSONA,),
        engine_factory=lambda name: engine,
    )
    # No admission limits and capacity = workload size: the chaos run
    # exercises dispatch-side failure handling, so every request must
    # reach the engine (admission edge cases get their own tests).
    gateway = Gateway(
        router,
        queue_capacity=max(requests, 1),
        batch_size=batch_size,
        workers=0,
        clock=clock,
    )
    workload = _chaos_requests(pairs, tenants)
    responses = asyncio.run(run_inline(gateway, workload))

    violations: list[str] = []
    if len(responses) != len(workload):
        violations.append(
            f"{len(workload)} requests in, {len(responses)} responses out"
        )
    for request, response in zip(workload, responses):
        if response.request.request_id != request.request_id:
            violations.append(
                f"response order broken at {request.request_id}"
            )
            break
    for response in responses:
        if not response.ok:
            violations.append(
                f"{response.request.request_id} not answered: "
                f"{response.status} ({response.reason})"
            )
        elif response.source not in _VALID_SOURCES:
            violations.append(
                f"illegal response source {response.source!r}"
            )
    violations += gateway.stats.violations(in_queue=gateway.queue_depth)
    violations += gateway.stats.reconcile_engines(router.engines())
    violations += engine_stats_violations(engine)
    violations += _degradation_violations(responses)

    if fault_rate == 0.0:
        violations += _transparency_violations(
            responses, pairs, seed, batch_size
        )

    engine_stats = engine.stats.as_dict()
    engine_stats.pop("latency", None)
    return ServeChaosReport(
        seed=seed,
        fault_rate=fault_rate,
        requests=len(workload),
        sources=dict(Counter(r.source for r in responses if r.source)),
        statuses=dict(Counter(r.status for r in responses)),
        injected=backend.injected_counts(),
        gateway_stats=gateway.stats.as_dict(),
        engine_stats=engine_stats,
        violations=tuple(violations),
        fingerprint=_fingerprint(responses),
    )


def _transparency_violations(
    responses: "list[MatchResponse]",
    pairs: "list[tuple[str, str]]",
    seed: int,
    batch_size: int,
) -> list[str]:
    """Rate-0 check: gateway answers == un-wrapped engine, byte for byte.

    The baseline engine shares every knob with the chaos engine (same
    scheduler granularity, retry, breaker — see ``chaos_engine_on``) and
    is fed the same pairs in the same persona-contiguous chunks the
    gateway dispatched, so the only difference left is the gateway
    wrapping itself.
    """
    plain = chaos_engine_on(ParityBackend(), ManualClock(), seed)
    baseline = []
    for i in range(0, len(pairs), batch_size):
        baseline.extend(plain.match_pairs(pairs[i:i + batch_size]))
    problems = []
    for response, want in zip(responses, baseline):
        got = (response.decision, response.response, response.source)
        expected = (want.decision, want.response, want.source)
        if got != expected:
            problems.append(
                f"rate-0 divergence at {response.request.request_id}: "
                f"gateway {got} != engine {expected}"
            )
    return problems


def serve_sweep(
    seeds=(0, 1, 2),
    rates=(0.0, 0.3),
    requests: int = 96,
    tenants: int = 2,
) -> list[ServeChaosReport]:
    """The gateway chaos grid: every seed × every rate."""
    return [
        chaos_serve(seed=seed, fault_rate=rate, requests=requests,
                    tenants=tenants)
        for seed in seeds
        for rate in rates
    ]
