"""Deterministic open-loop load generation for the gateway.

An *open-loop* generator decides every arrival time ahead of the run
(seeded Poisson process at the offered load) and submits each request at
its scheduled instant whether or not earlier requests have completed —
the arrival process never slows down to match the service rate, which is
what makes saturation measurable (a closed loop would self-throttle and
hide the overload).

Everything is seeded through :func:`repro._util.derive_rng`, so a
profile expands to the byte-identical request sequence on every run:
arrival gaps, pair draws over the given workload, and the round-robin
tenant assignment.  Replay takes its clock and async sleeper as
injectables: real time (``time.perf_counter`` + ``asyncio.sleep``) for
the saturation benchmark, simulated time
(:class:`~repro.faults.clock.ManualClock`) for chaos runs and the
byte-identical ``repro-em serve`` CLI session.
"""

from __future__ import annotations

import asyncio
from collections import Counter
from dataclasses import dataclass
from typing import Awaitable, Callable, Sequence

import numpy as np

from repro._util import derive_rng
from repro.faults.clock import ManualClock
from repro.serve.gateway import Gateway
from repro.serve.protocol import DEFAULT_PERSONA, MatchRequest, MatchResponse

__all__ = [
    "Arrival",
    "LoadProfile",
    "ReplayOutcome",
    "generate_arrivals",
    "replay",
    "replay_simulated",
    "summarize",
]


@dataclass(frozen=True)
class LoadProfile:
    """One load point: how much traffic, shaped how."""

    #: mean offered load, requests per second (Poisson arrivals).
    offered_load: float
    #: total requests to generate.
    requests: int
    #: tenants cycled round-robin as ``tenant-0 .. tenant-N-1``.
    tenants: int = 1
    persona: str = DEFAULT_PERSONA
    #: per-request relative deadline in seconds (None = no deadline).
    deadline: float | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.offered_load <= 0:
            raise ValueError("offered_load must be positive")
        if self.requests < 1:
            raise ValueError("requests must be positive")
        if self.tenants < 1:
            raise ValueError("tenants must be positive")


@dataclass(frozen=True)
class Arrival:
    """One scheduled request: submit *request* at time *at* (seconds)."""

    at: float
    request: MatchRequest


@dataclass(frozen=True)
class ReplayOutcome:
    """One replayed request with its timing, for latency accounting."""

    arrival: Arrival
    response: MatchResponse
    #: when the request was actually submitted (>= scheduled time when
    #: the generator fell behind; latency is measured from the schedule
    #: to stay free of coordinated omission).
    submitted_at: float
    completed_at: float

    @property
    def latency(self) -> float:
        """Schedule-to-completion latency, relative to the replay start."""
        return self.completed_at - self.arrival.at


def generate_arrivals(
    profile: LoadProfile, pairs: Sequence[tuple]
) -> list[Arrival]:
    """Expand a profile into its deterministic arrival schedule.

    *pairs* is the workload to draw from — ``(left, right)`` description
    tuples (dataset pairs via ``split.pairs`` work too: anything with
    ``left.description`` / ``right.description`` attributes).
    """
    if not pairs:
        raise ValueError("cannot generate load over an empty pair list")
    rng = derive_rng(profile.seed, "serve-loadgen", profile.requests)
    arrivals: list[Arrival] = []
    at = 0.0
    for i in range(profile.requests):
        at += float(rng.exponential(1.0 / profile.offered_load))
        drawn = pairs[int(rng.integers(len(pairs)))]
        if isinstance(drawn, tuple):
            left, right = drawn
        else:  # EntityPair-shaped workload
            left, right = drawn.left.description, drawn.right.description
        arrivals.append(
            Arrival(
                at=at,
                request=MatchRequest(
                    tenant=f"tenant-{i % profile.tenants}",
                    left=left,
                    right=right,
                    persona=profile.persona,
                    deadline=None if profile.deadline is None
                    else at + profile.deadline,
                    request_id=f"req-{i:06d}",
                ),
            )
        )
    return arrivals


async def replay(
    gateway: Gateway,
    arrivals: Sequence[Arrival],
    *,
    clock: Callable[[], float],
    sleep_async: Callable[[float], Awaitable[None]],
) -> list[ReplayOutcome]:
    """Open-loop replay on an injected clock (threaded-gateway mode).

    Submits each arrival at its scheduled offset from the replay start —
    sleeping only while ahead of schedule, never waiting on completions —
    then gathers every response.  All timestamps come from *clock*, so
    the same routine serves the real-time benchmark and simulated runs.
    """
    start = clock()
    tasks: list[asyncio.Task] = []
    submitted: list[float] = []

    async def timed(request: MatchRequest) -> tuple[MatchResponse, float]:
        response = await gateway.match(request)
        return response, clock() - start

    for arrival in arrivals:
        delay = (start + arrival.at) - clock()
        if delay > 0:
            await sleep_async(delay)
        submitted.append(clock() - start)
        tasks.append(asyncio.ensure_future(timed(arrival.request)))
    answered = await asyncio.gather(*tasks)
    return [
        ReplayOutcome(
            arrival=arrival,
            response=response,
            submitted_at=submitted_at,
            completed_at=completed_at,
        )
        for arrival, submitted_at, (response, completed_at)
        in zip(arrivals, submitted, answered)
    ]


async def replay_simulated(
    gateway: Gateway,
    arrivals: Sequence[Arrival],
    clock: ManualClock,
    pump_every: int = 8,
) -> list[ReplayOutcome]:
    """Deterministic replay on simulated time (inline-mode gateway).

    The clock jumps straight to each arrival instant, and the queue is
    pumped once every *pump_every* submissions — modelling a dispatcher
    that frees up at that cadence, so micro-batches and backpressure
    genuinely form — but the whole session, chunk boundaries and all, is
    a pure function of ``(arrivals, gateway configuration, pump_every)``.
    """
    if pump_every < 1:
        raise ValueError("pump_every must be positive")
    start = clock()
    tasks: list[asyncio.Task] = []
    submitted: list[float] = []

    async def timed(request: MatchRequest) -> tuple[MatchResponse, float]:
        response = await gateway.match(request)
        return response, clock() - start

    for i, arrival in enumerate(arrivals):
        clock.advance(max(0.0, (start + arrival.at) - clock()))
        submitted.append(clock() - start)
        tasks.append(asyncio.ensure_future(timed(arrival.request)))
        # Yield so the submission reaches its queue slot before the next
        # arrival (or a pump) can reorder around it.
        await asyncio.sleep(0)
        if (i + 1) % pump_every == 0:
            # repro-lint: disable=deep-async-blocking — simulated replay
            # drives an inline gateway: workers=0, pump never blocks.
            gateway.pump_all()
    while not all(task.done() for task in tasks):
        await asyncio.sleep(0)
        # repro-lint: disable=deep-async-blocking — same inline drive.
        gateway.pump_all()
    answered = [task.result() for task in tasks]
    return [
        ReplayOutcome(
            arrival=arrival,
            response=response,
            submitted_at=submitted_at,
            completed_at=completed_at,
        )
        for arrival, submitted_at, (response, completed_at)
        in zip(arrivals, submitted, answered)
    ]

def summarize(
    outcomes: "Sequence[ReplayOutcome]", qs: tuple = (50, 95, 99)
) -> dict:
    """Roll one replay up into the numbers the benchmark and CLI report.

    Latency percentiles cover *answered* (``ok``) requests only —
    schedule-to-completion, so queueing delay under overload is included
    and coordinated omission is not.  ``goodput`` is answered requests
    per second of replay (first scheduled arrival to last completion).
    """
    statuses = Counter(o.response.status for o in outcomes)
    sources = Counter(
        o.response.source for o in outcomes if o.response.source
    )
    answered = [o for o in outcomes if o.response.ok]
    latency: dict[str, float] = {}
    if answered:
        values = np.percentile(
            np.asarray([o.latency for o in answered]), qs
        )
        latency = {f"p{q}": float(v) for q, v in zip(qs, values)}
    duration = max((o.completed_at for o in outcomes), default=0.0)
    return {
        "requests": len(outcomes),
        "answered": len(answered),
        "statuses": dict(sorted(statuses.items())),
        "sources": dict(sorted(sources.items())),
        "latency": {k: round(v, 6) for k, v in latency.items()},
        "duration": round(duration, 6),
        "goodput": round(len(answered) / duration, 4) if duration else 0.0,
    }
