"""Admission control: per-tenant token buckets, quotas, a global cap.

Every request the gateway accepts passes three gates, in order:

1. **Global concurrency cap** — at most ``max_concurrency`` admitted
   requests may be in flight (queued or dispatching) across all tenants;
   beyond that, admission refuses with ``saturated``.  Checked first so
   a saturated gateway refuses cheaply without consuming any tenant's
   tokens.
2. **Per-tenant quota** — a lifetime ceiling on admitted requests
   (``quota_exceeded``); the budget never refills.
3. **Per-tenant token bucket** — sustained ``rate`` requests/second with
   bursts up to ``burst`` (``rate_limited``).  The bucket refills
   continuously from the injectable clock, so tests drive it with
   :class:`~repro.faults.clock.ManualClock` and never sleep.

A token is consumed only when all gates pass, so a refusal never charges
the tenant.  Admission and release are thread-safe: the event loop
admits while dispatch threads release completed requests.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass
from typing import Annotated, Callable

from repro.concurrency import guarded_by

__all__ = ["AdmissionController", "TenantPolicy", "TokenBucket"]


@dataclass(frozen=True)
class TenantPolicy:
    """Rate/burst/quota knobs for one tenant (defaults: unlimited)."""

    #: sustained admissions per second (``inf`` = unmetered).
    rate: float = math.inf
    #: bucket capacity; 0 means the tenant can never be admitted.
    burst: float = math.inf
    #: lifetime admission ceiling (None = unlimited).
    quota: int | None = None

    def __post_init__(self) -> None:
        if self.rate < 0:
            raise ValueError(f"rate must be >= 0, got {self.rate}")
        if self.burst < 0:
            raise ValueError(f"burst must be >= 0, got {self.burst}")
        if self.quota is not None and self.quota < 0:
            raise ValueError(f"quota must be >= 0, got {self.quota}")


class TokenBucket:
    """Classic token bucket on an injectable clock (thread-unsafe on its
    own; the controller serializes access under its lock)."""

    def __init__(
        self, rate: float, capacity: float, clock: Callable[[], float]
    ) -> None:
        self.rate = rate
        self.capacity = capacity
        self.clock = clock
        self._tokens = capacity
        self._refilled_at = clock()

    def _refill(self) -> None:
        now = self.clock()
        elapsed = now - self._refilled_at
        if elapsed > 0 and self.rate > 0 and not math.isinf(self.capacity):
            self._tokens = min(self.capacity, self._tokens + elapsed * self.rate)
        self._refilled_at = now

    @property
    def tokens(self) -> float:
        self._refill()
        return self._tokens

    def try_acquire(self, n: float = 1.0) -> bool:
        """Take *n* tokens if available; never blocks."""
        if math.isinf(self.capacity):
            return True
        self._refill()
        if self._tokens >= n:
            self._tokens -= n
            return True
        return False


class AdmissionController:
    """The gateway's front door: decide, per request, admit or refuse."""

    #: tenant → admitted-forever count (quota accounting).
    _admitted: Annotated["dict[str, int]", guarded_by("_lock")]
    #: admitted requests currently in flight (queued or dispatching).
    in_flight: Annotated[int, guarded_by("_lock")]

    def __init__(
        self,
        clock: Callable[[], float] = time.monotonic,
        default_policy: TenantPolicy = TenantPolicy(),
        tenant_policies: "dict[str, TenantPolicy] | None" = None,
        max_concurrency: int | None = None,
    ) -> None:
        if max_concurrency is not None and max_concurrency < 0:
            raise ValueError(
                f"max_concurrency must be >= 0, got {max_concurrency}"
            )
        self.clock = clock
        self.default_policy = default_policy
        self.tenant_policies = dict(tenant_policies or {})
        self.max_concurrency = max_concurrency
        self._buckets: dict[str, TokenBucket] = {}
        self._admitted: dict[str, int] = {}
        self.in_flight = 0
        self._lock = threading.Lock()

    def policy_for(self, tenant: str) -> TenantPolicy:
        return self.tenant_policies.get(tenant, self.default_policy)

    def _bucket_for(self, tenant: str) -> TokenBucket:
        bucket = self._buckets.get(tenant)
        if bucket is None:
            policy = self.policy_for(tenant)
            bucket = TokenBucket(policy.rate, policy.burst, self.clock)
            self._buckets[tenant] = bucket
        return bucket

    def admit(self, tenant: str) -> str | None:
        """Try to admit one request; None on success, else the reason
        ("saturated" / "quota_exceeded" / "rate_limited").

        A successful admission holds one concurrency slot until
        :meth:`release` is called for it.
        """
        with self._lock:
            if (
                self.max_concurrency is not None
                and self.in_flight >= self.max_concurrency
            ):
                return "saturated"
            policy = self.policy_for(tenant)
            if (
                policy.quota is not None
                and self._admitted.get(tenant, 0) >= policy.quota
            ):
                return "quota_exceeded"
            if not self._bucket_for(tenant).try_acquire():
                return "rate_limited"
            self._admitted[tenant] = self._admitted.get(tenant, 0) + 1
            self.in_flight += 1
            return None

    def release(self, tenant: str) -> None:
        """Free the concurrency slot of one admitted request."""
        with self._lock:
            if self.in_flight <= 0:
                raise RuntimeError(
                    f"release({tenant!r}) without a matching admit"
                )
            self.in_flight -= 1

    def admitted_total(self, tenant: str) -> int:
        """Lifetime admissions for *tenant* (quota accounting view)."""
        with self._lock:
            return self._admitted.get(tenant, 0)
