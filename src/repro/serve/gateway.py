"""The asyncio request gateway: bounded queue, backpressure, degradation.

Request lifecycle::

    await gateway.match(request)
      → persona routing (unknown persona → structured 404, never a traceback)
      → admission control (rate / quota / concurrency → 429)
      → deadline check (already expired → 504, never dispatched)
      → bounded request queue
          — full → graceful degradation (threshold answer, source="degraded")
                   or load shed (503) when degradation is disabled
      → dispatch worker dequeues a persona-contiguous chunk
          — deadline re-check: anything that expired while queued → 504
          — circuit breaker open → degraded answers without touching the
            backend
          — otherwise the chunk goes through ``MatchingEngine.match_pairs``
            (backpressure into the engine's micro-batching scheduler)
      → the caller's future is resolved from the dispatch thread via
        ``loop.call_soon_threadsafe``

Async callers await a :class:`_QueuedRequest` future — the asyncio
sibling of the engine's ``_Pending`` slot: written exactly once, by the
dispatching side, and handed back through the owning event loop so no
response ever crosses threads unsynchronized.

Two drive modes share all of that code path:

* **threaded** (``workers >= 1`` + ``await gateway.start()``): real
  dispatch threads block on the queue; this is the serving/benchmark
  mode.
* **inline** (``workers=0``): nothing runs in the background; the test,
  chaos harness, or CLI pumps the queue deterministically with
  :meth:`Gateway.pump` / :func:`run_inline`.  Combined with
  :class:`~repro.faults.clock.ManualClock` a whole serving session is a
  pure function of its inputs.

Time never comes from the ambient clock: the constructor takes ``clock``
(and the queue wait accounting, deadline checks, and breaker reads all
go through it), so the ``injectable-sleep`` lint rule holds for this
package too.
"""

from __future__ import annotations

import asyncio
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Annotated, Callable, Sequence

from repro.baselines.threshold import ThresholdMatcher
from repro.concurrency import guarded_by, shutdown_order
from repro.datasets.schema import EntityPair, Record, Split
from repro.engine.engine import MatchingEngine
from repro.serve.admission import AdmissionController
from repro.serve.protocol import MatchRequest, MatchResponse
from repro.serve.router import PersonaRouter, UnknownPersonaError
from repro.serve.stats import GatewayStats

__all__ = ["Gateway", "run_inline"]


@dataclass
class _QueuedRequest:
    """One admitted request parked in the gateway queue.

    The future is created on (and resolved through) the submitting
    caller's event loop; the dispatch thread only ever touches it via
    ``loop.call_soon_threadsafe``.
    """

    request: MatchRequest
    persona: str
    loop: asyncio.AbstractEventLoop
    future: "asyncio.Future[MatchResponse]"
    enqueued_at: float


class Gateway:
    """Async front door over per-persona matching engines."""

    #: shared queue state — touched by the event loop (submission) and
    #: the dispatch threads (dequeue), always under ``_cv``.
    _queue: Annotated["deque[_QueuedRequest]", guarded_by("_cv")]
    _closed: Annotated[bool, guarded_by("_cv")]

    #: teardown contract, machine-checked by ``deep-shutdown-order``:
    #: wake every worker blocked on ``_cv`` (so the drain can finish)
    #: *before* joining the dispatch threads.  Joining first deadlocks —
    #: a parked worker never observes ``_closed``.
    __shutdown_order__ = shutdown_order("_cv", "_threads")

    def __init__(
        self,
        router: PersonaRouter,
        admission: AdmissionController | None = None,
        *,
        queue_capacity: int = 256,
        batch_size: int = 32,
        workers: int = 0,
        clock: Callable[[], float] = time.monotonic,
        fallback: ThresholdMatcher | None = None,
        stats: GatewayStats | None = None,
        degrade_on_overload: bool = True,
    ) -> None:
        if queue_capacity < 1:
            raise ValueError("queue_capacity must be positive")
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        if workers < 0:
            raise ValueError("workers must be >= 0")
        self.router = router
        self.admission = admission
        self.queue_capacity = queue_capacity
        self.batch_size = batch_size
        self.workers = workers
        self.stats = stats if stats is not None else GatewayStats()
        #: gateway-level degraded matcher (overload / open breaker); the
        #: same threshold baseline the engine falls back to, so degraded
        #: answers stay checkable against a standalone ThresholdMatcher.
        self.fallback = fallback if fallback is not None else ThresholdMatcher()
        self.degrade_on_overload = degrade_on_overload
        self._clock = clock
        self._queue: "deque[_QueuedRequest]" = deque()
        self._cv = threading.Condition()
        self._threads: list[threading.Thread] = []
        self._closed = False

    # ------------------------------------------------------------- lifecycle

    async def start(self) -> "Gateway":
        """Spawn the dispatch threads (no-op in inline mode)."""
        for i in range(self.workers):
            thread = threading.Thread(
                target=self._worker_loop, name=f"gateway-worker-{i}", daemon=True
            )
            thread.start()
            self._threads.append(thread)
        return self

    async def close(self) -> None:
        """Stop accepting work and join the dispatch threads.

        Anything still queued is drained by the workers before they
        exit, so every admitted request is answered.
        """
        with self._cv:
            self._closed = True
            self._cv.notify_all()
        loop = asyncio.get_running_loop()
        for thread in self._threads:
            # Joining on the loop would stall every other task for the
            # length of the drain; hop the join to an executor thread.
            await loop.run_in_executor(None, thread.join)
        self._threads.clear()

    async def __aenter__(self) -> "Gateway":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    @property
    def queue_depth(self) -> int:
        with self._cv:
            return len(self._queue)

    # -------------------------------------------------------------- matching

    async def match(self, request: MatchRequest) -> MatchResponse:
        """Answer one request (structured response, never a traceback)."""
        try:
            persona = self.router.resolve(request.persona)
        except UnknownPersonaError as exc:
            self.stats.record_submitted(request.tenant, "")
            self.stats.record_error(request.tenant)
            return self._response(
                request, "error", persona="", reason=str(exc)
            )
        self.stats.record_submitted(request.tenant, persona)

        if self.admission is not None:
            refusal = self.admission.admit(request.tenant)
            if refusal is not None:
                self.stats.record_rejected(request.tenant, persona, refusal)
                return self._response(
                    request, "rejected", persona=persona, reason=refusal
                )

        now = self._clock()
        if request.deadline is not None and now >= request.deadline:
            # Dead on arrival: admitted, released, never queued.
            return self._settle_unqueued(request, persona, "expired",
                                         reason="deadline_expired")

        loop = asyncio.get_running_loop()
        item = _QueuedRequest(
            request=request,
            persona=persona,
            loop=loop,
            future=loop.create_future(),
            enqueued_at=now,
        )
        with self._cv:
            if len(self._queue) >= self.queue_capacity:
                overloaded = True
            else:
                overloaded = False
                self._queue.append(item)
                depth = len(self._queue)
                self._cv.notify()
        if overloaded:
            if self.degrade_on_overload:
                return self._settle_unqueued(
                    request, persona, "degraded", reason="queue_full"
                )
            return self._settle_unqueued(
                request, persona, "shed", reason="queue_full"
            )
        self.stats.record_admitted(request.tenant, persona, depth)
        return await item.future

    async def match_many(
        self, requests: Sequence[MatchRequest]
    ) -> list[MatchResponse]:
        """Concurrent submission of a whole workload (threaded mode)."""
        return list(
            await asyncio.gather(*(self.match(r) for r in requests))
        )

    # ----------------------------------------------------------- dispatching

    def pump(self) -> int:
        """Dispatch one persona-contiguous chunk inline (workers=0 mode).

        Returns the number of requests handled; 0 when the queue is
        empty.  Must only be called from the event-loop thread of the
        submitting callers, and never concurrently with started workers.
        """
        chunk = self._take_chunk(block=False)
        if not chunk:
            return 0
        self._process(chunk)
        return len(chunk)

    def pump_all(self) -> int:
        """Pump until the queue is empty; returns requests handled."""
        handled = 0
        while True:
            step = self.pump()
            if step == 0:
                return handled
            handled += step

    def _worker_loop(self) -> None:
        while True:
            chunk = self._take_chunk(block=True)
            if chunk is None:
                return
            if chunk:
                self._process(chunk)

    def _take_chunk(self, block: bool) -> "list[_QueuedRequest] | None":
        """Pop up to ``batch_size`` same-persona items from the queue head.

        Grouping is persona-contiguous so dispatch order stays the
        arrival order — a chunk never overtakes an earlier request bound
        for a different engine.  Returns None when the gateway is closed
        and drained (threaded workers exit on it).
        """
        with self._cv:
            while block and not self._queue and not self._closed:
                self._cv.wait()
            if not self._queue:
                return None if (block and self._closed) else []
            persona = self._queue[0].persona
            chunk = []
            while (
                self._queue
                and len(chunk) < self.batch_size
                and self._queue[0].persona == persona
            ):
                chunk.append(self._queue.popleft())
            return chunk

    def _process(self, chunk: "list[_QueuedRequest]") -> None:
        """Answer one dequeued chunk (runs on a dispatch thread)."""
        persona = chunk[0].persona
        now = self._clock()
        live: list[_QueuedRequest] = []
        for item in chunk:
            deadline = item.request.deadline
            if deadline is not None and now >= deadline:
                # Expired while queued: shed without ever dispatching.
                self._settle(item, "expired", reason="deadline_expired")
            else:
                live.append(item)
        if not live:
            return
        engine = self.router.engine(persona)
        if self._breaker_open(engine, now):
            self._degrade(live, reason="circuit_open")
            return
        try:
            results = engine.match_pairs(
                [(item.request.left, item.request.right) for item in live]
            )
        except Exception:
            # The engine's own retry/fallback machinery answers transport
            # failures internally; anything escaping here is unexpected —
            # degrade the chunk so no caller hangs, then let the error
            # surface. (SimulatedCrash derives from BaseException and
            # sails past this handler by design.)
            self._degrade(live, reason="dispatch_error")
            raise
        for item, result in zip(live, results):
            self.stats.record_outcome(
                item.request.tenant, item.persona, "completed"
            )
            self._release(item.request.tenant)
            self._resolve(
                item,
                MatchResponse(
                    request=item.request,
                    status="ok",
                    decision=result.decision,
                    response=result.response,
                    source=result.source,
                    persona=item.persona,
                ),
            )

    # ------------------------------------------------------------ degradation

    @staticmethod
    def _breaker_open(engine: MatchingEngine, now: float) -> bool:
        """Whether the engine's breaker is open with cooldown remaining.

        Lock-free peek at the breaker's state: a race can only delay
        degradation by one chunk, never corrupt it — the engine itself
        re-checks under its own lock on dispatch.
        """
        breaker = engine.breaker
        return (
            breaker.state == "open"
            and now - breaker.opened_at < breaker.cooldown
        )

    @staticmethod
    def _normalize(text: str) -> str:
        """Whitespace normalization, matching the engine's raw-pair path."""
        return " ".join(text.split())

    def _degraded_decisions(
        self, pairs: "list[tuple[str, str]]"
    ) -> "list[bool]":
        split = Split(
            name="degraded",
            pairs=[
                EntityPair(
                    pair_id=f"degraded-{i}",
                    left=Record(record_id=f"dg-{i}-l", attributes={},
                                description=self._normalize(left)),
                    right=Record(record_id=f"dg-{i}-r", attributes={},
                                 description=self._normalize(right)),
                    label=False,
                )
                for i, (left, right) in enumerate(pairs)
            ],
        )
        return [bool(d) for d in self.fallback.predict(split)]

    def _degrade(self, items: "list[_QueuedRequest]", reason: str) -> None:
        """Answer *items* with the gateway's threshold matcher."""
        decisions = self._degraded_decisions(
            [(item.request.left, item.request.right) for item in items]
        )
        for item, decision in zip(items, decisions):
            self.stats.record_outcome(
                item.request.tenant, item.persona, "degraded"
            )
            self._release(item.request.tenant)
            self._resolve(
                item,
                MatchResponse(
                    request=item.request,
                    status="ok",
                    decision=decision,
                    response=None,
                    source="degraded",
                    persona=item.persona,
                    reason=reason,
                ),
            )

    # ------------------------------------------------------------- plumbing

    def _response(
        self,
        request: MatchRequest,
        status: str,
        persona: str,
        reason: str = "",
        decision: bool | None = None,
        source: str = "",
    ) -> MatchResponse:
        return MatchResponse(
            request=request,
            status=status,
            decision=decision,
            response=None,
            source=source,
            persona=persona,
            reason=reason,
        )

    def _settle_unqueued(
        self, request: MatchRequest, persona: str, outcome: str, reason: str
    ) -> MatchResponse:
        """Terminal outcome for an admitted request that never queued."""
        self.stats.record_admitted(request.tenant, persona, self.queue_depth)
        self.stats.record_outcome(request.tenant, persona, outcome)
        self._release(request.tenant)
        if outcome == "degraded":
            [decision] = self._degraded_decisions([(request.left, request.right)])
            return self._response(
                request, "ok", persona=persona, reason=reason,
                decision=decision, source="degraded",
            )
        status = "expired" if outcome == "expired" else "shed"
        return self._response(request, status, persona=persona, reason=reason)

    def _settle(self, item: _QueuedRequest, outcome: str, reason: str) -> None:
        """Terminal non-answered outcome for a queued request."""
        self.stats.record_outcome(item.request.tenant, item.persona, outcome)
        self._release(item.request.tenant)
        status = "expired" if outcome == "expired" else "shed"
        self._resolve(
            item,
            self._response(
                item.request, status, persona=item.persona, reason=reason
            ),
        )

    def _release(self, tenant: str) -> None:
        if self.admission is not None:
            self.admission.release(tenant)

    @staticmethod
    def _set_result(
        future: "asyncio.Future[MatchResponse]", response: MatchResponse
    ) -> None:
        if not future.done():
            future.set_result(response)

    def _resolve(self, item: _QueuedRequest, response: MatchResponse) -> None:
        item.loop.call_soon_threadsafe(self._set_result, item.future, response)


async def run_inline(
    gateway: Gateway, requests: Sequence[MatchRequest]
) -> list[MatchResponse]:
    """Submit a workload and pump it to completion, deterministically.

    Inline-mode driver (``workers=0``): every request is submitted as a
    task, then the queue is pumped until all responses resolve.  With a
    :class:`~repro.faults.clock.ManualClock` the whole session — chunk
    boundaries included — is a pure function of the request sequence.
    """
    tasks = [asyncio.ensure_future(gateway.match(r)) for r in requests]
    while not all(task.done() for task in tasks):
        # Scheduler yield (zero simulated time): lets submissions reach
        # their queue slots and resolved futures wake their awaiters.
        await asyncio.sleep(0)
        # repro-lint: disable=deep-async-blocking — inline mode IS the
        # dispatcher: workers=0, pump never blocks (non-blocking take).
        gateway.pump_all()
    return [task.result() for task in tasks]
