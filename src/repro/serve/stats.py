"""Gateway observability: per-tenant / per-persona counters (thread-safe).

One :class:`GatewayStats` object accompanies a
:class:`~repro.serve.gateway.Gateway` for its lifetime.  Counters follow
every request through the funnel::

    submitted ── errors (unknown persona)
             └── rejected (admission: rate / quota / concurrency)
             └── admitted ── completed        (answered by an engine)
                         └── degraded         (gateway threshold answer)
                         └── shed             (queue full, no degradation)
                         └── expired          (deadline passed in queue)

The funnel is exact, and :meth:`GatewayStats.violations` checks it the
same way the chaos harness checks :class:`~repro.engine.stats.EngineStats`
conservation: ``submitted = errors + rejected + admitted`` and
``admitted = completed + degraded + shed + expired`` (plus whatever is
still queued at snapshot time).  ``completed`` additionally reconciles
with the engines themselves — every completed request is exactly one
engine request, so ``completed[persona] == engine.stats.requests`` for
each routed engine; :meth:`reconcile_engines` asserts it.

Mutation goes through ``record_*`` methods under one lock, so counters
stay exact when the event loop and N dispatch threads write
concurrently; reads of the public fields are safe once traffic stops.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Annotated, Mapping

from repro.concurrency import guarded_by

__all__ = ["GatewayStats", "LaneStats"]

#: terminal outcomes an *admitted* request can reach.
_OUTCOMES = ("completed", "degraded", "shed", "expired")


@dataclass
class LaneStats:
    """Counters for one lane (one tenant, or one persona)."""

    submitted: int = 0
    errors: int = 0
    rejected: int = 0
    admitted: int = 0
    completed: int = 0
    degraded: int = 0
    shed: int = 0
    expired: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "submitted": self.submitted,
            "errors": self.errors,
            "rejected": self.rejected,
            "admitted": self.admitted,
            "completed": self.completed,
            "degraded": self.degraded,
            "shed": self.shed,
            "expired": self.expired,
        }


@dataclass
class GatewayStats:
    """Counters for one gateway instance, total and per lane."""

    total: Annotated[LaneStats, guarded_by("_lock")] = field(
        default_factory=LaneStats
    )
    tenants: Annotated[dict, guarded_by("_lock")] = field(default_factory=dict)
    personas: Annotated[dict, guarded_by("_lock")] = field(default_factory=dict)
    #: admission rejections by reason ("rate_limited" / "quota_exceeded" /
    #: "saturated").
    rejected_reasons: Annotated[dict, guarded_by("_lock")] = field(
        default_factory=dict
    )
    #: deepest the request queue ever got (backpressure high-water mark).
    queue_high_water: Annotated[int, guarded_by("_lock")] = 0
    _lock: threading.RLock = field(
        default_factory=threading.RLock, init=False, repr=False, compare=False
    )

    # ------------------------------------------------------------- recording

    def _lanes(self, tenant: str, persona: str) -> tuple[LaneStats, ...]:
        """Lanes one request touches (re-entrant: callers hold ``_lock``)."""
        with self._lock:
            return (
                self.total,
                self.tenants.setdefault(tenant, LaneStats()),
                *(
                    (self.personas.setdefault(persona, LaneStats()),)
                    if persona
                    else ()
                ),
            )

    def record_submitted(self, tenant: str, persona: str = "") -> None:
        with self._lock:
            for lane in self._lanes(tenant, persona):
                lane.submitted += 1

    def record_error(self, tenant: str) -> None:
        """An un-routable request (unknown persona): no persona lane."""
        with self._lock:
            for lane in self._lanes(tenant, ""):
                lane.errors += 1

    def record_rejected(self, tenant: str, persona: str, reason: str) -> None:
        with self._lock:
            for lane in self._lanes(tenant, persona):
                lane.rejected += 1
            self.rejected_reasons[reason] = (
                self.rejected_reasons.get(reason, 0) + 1
            )

    def record_admitted(self, tenant: str, persona: str, depth: int) -> None:
        """One admission; *depth* is the queue depth just after enqueue."""
        with self._lock:
            for lane in self._lanes(tenant, persona):
                lane.admitted += 1
            if depth > self.queue_high_water:
                self.queue_high_water = depth

    def record_outcome(self, tenant: str, persona: str, outcome: str) -> None:
        """Terminal outcome of one admitted request."""
        if outcome not in _OUTCOMES:
            raise ValueError(f"unknown outcome {outcome!r}")
        with self._lock:
            for lane in self._lanes(tenant, persona):
                setattr(lane, outcome, getattr(lane, outcome) + 1)

    # ------------------------------------------------------------ invariants

    def violations(self, in_queue: int = 0) -> list[str]:
        """Conservation violations; empty means every request is accounted.

        *in_queue* is the number of requests still queued at snapshot
        time (0 once the gateway has drained).
        """
        problems: list[str] = []
        with self._lock:
            lanes: list[tuple[str, LaneStats]] = [("total", self.total)]
            lanes += [(f"tenant {k}", v) for k, v in sorted(self.tenants.items())]
            lanes += [(f"persona {k}", v) for k, v in sorted(self.personas.items())]
            for name, lane in lanes:
                settled = lane.completed + lane.degraded + lane.shed + lane.expired
                queued = in_queue if name == "total" else 0
                if name == "total":
                    if lane.submitted != lane.errors + lane.rejected + lane.admitted:
                        problems.append(
                            f"{name}: submitted {lane.submitted} != errors "
                            f"{lane.errors} + rejected {lane.rejected} + "
                            f"admitted {lane.admitted}"
                        )
                if lane.admitted != settled + queued:
                    problems.append(
                        f"{name}: admitted {lane.admitted} != completed "
                        f"{lane.completed} + degraded {lane.degraded} + shed "
                        f"{lane.shed} + expired {lane.expired} + queued {queued}"
                    )
            for field_name in ("submitted", "admitted", "completed", "degraded",
                               "shed", "expired", "rejected", "errors"):
                tenant_sum = sum(
                    getattr(v, field_name) for v in self.tenants.values()
                )
                if tenant_sum != getattr(self.total, field_name):
                    problems.append(
                        f"tenant lanes sum {field_name} {tenant_sum} != total "
                        f"{getattr(self.total, field_name)}"
                    )
            reason_sum = sum(self.rejected_reasons.values())
            if reason_sum != self.total.rejected:
                problems.append(
                    f"rejection reasons sum {reason_sum} != rejected "
                    f"{self.total.rejected}"
                )
        return problems

    def reconcile_engines(self, engines: Mapping[str, object]) -> list[str]:
        """Cross-check against the routed engines' own counters.

        Every *completed* request was handed to exactly one engine as one
        engine request; degraded / shed / expired requests never reach an
        engine.  So per persona, ``completed == engine.stats.requests``.
        """
        problems: list[str] = []
        with self._lock:
            persona_completed = {
                name: lane.completed for name, lane in self.personas.items()
            }
        for persona, engine in sorted(engines.items()):
            want = persona_completed.get(persona, 0)
            got = engine.stats.requests
            if want != got:
                problems.append(
                    f"persona {persona}: gateway completed {want} != engine "
                    f"requests {got}"
                )
        routed = set(persona_completed) - set(engines)
        for persona in sorted(routed):
            if persona_completed[persona]:
                problems.append(
                    f"persona {persona}: {persona_completed[persona]} completed "
                    "requests but no engine was built for it"
                )
        return problems

    # ------------------------------------------------------------- summaries

    def as_dict(self) -> dict[str, object]:
        """JSON-serializable snapshot (used by the CLI and benchmarks)."""
        with self._lock:
            return {
                "total": self.total.as_dict(),
                "tenants": {
                    k: v.as_dict() for k, v in sorted(self.tenants.items())
                },
                "personas": {
                    k: v.as_dict() for k, v in sorted(self.personas.items())
                },
                "rejected_reasons": {
                    k: self.rejected_reasons[k]
                    for k in sorted(self.rejected_reasons)
                },
                "queue_high_water": self.queue_high_water,
            }
