"""Persona routing: request names a model persona, router owns the engines.

The provider→model routing idiom (one named route per capability
profile, resolved before any work is queued): a request carries a
persona name — a canonical name from
:data:`repro.llm.registry.PERSONAS`, a paper alias, or ``"default"`` —
and the router resolves it to the one
:class:`~repro.engine.MatchingEngine` serving that persona, building it
lazily on first use via :meth:`MatchingEngine.for_model`.

Unknown names raise :class:`UnknownPersonaError`, which the gateway
turns into a structured 404-style response (and the CLI into a one-line
``unknown persona: ...`` exit) — never a traceback.

The engine factory is injectable so tests and chaos runs route to
deterministic engines over fake or fault-injected backends without
building any model.
"""

from __future__ import annotations

import threading
from typing import Annotated, Callable, Iterable

from repro.concurrency import guarded_by
from repro.engine.engine import MatchingEngine
from repro.llm.registry import MODEL_NAMES, get_persona
from repro.serve.protocol import DEFAULT_PERSONA

__all__ = ["PersonaRouter", "UnknownPersonaError"]


class UnknownPersonaError(ValueError):
    """A request named a persona the router does not serve (404-style)."""

    def __init__(self, name: str, choices: Iterable[str]) -> None:
        self.persona = name
        self.choices = tuple(choices)
        super().__init__(
            f"unknown persona: {name} (choose from "
            f"{', '.join(self.choices)})"
        )


class PersonaRouter:
    """Resolve persona names to (lazily built) matching engines."""

    #: canonical persona → built engine (one engine per persona).
    _engines: Annotated["dict[str, MatchingEngine]", guarded_by("_lock")]

    def __init__(
        self,
        default: str = "llama-3.1-8b",
        personas: Iterable[str] | None = None,
        engine_factory: Callable[[str], MatchingEngine] | None = None,
        batch_size: int = 32,
    ) -> None:
        """Serve *personas* (default: every registered persona).

        *engine_factory(name)* builds the engine for one canonical
        persona; the default is the paper-faithful
        ``MatchingEngine.for_model`` path.
        """
        allowed = tuple(personas) if personas is not None else MODEL_NAMES
        self._allowed = tuple(get_persona(name).name for name in allowed)
        self._default = get_persona(default).name
        if self._default not in self._allowed:
            raise ValueError(
                f"default persona {default!r} is not among the served "
                f"personas {', '.join(self._allowed)}"
            )
        self._factory = engine_factory or (
            lambda name: MatchingEngine.for_model(name, batch_size=batch_size)
        )
        self._engines = {}
        self._lock = threading.Lock()

    @property
    def personas(self) -> tuple[str, ...]:
        """Canonical names this router serves."""
        return self._allowed

    @property
    def default(self) -> str:
        return self._default

    def resolve(self, name: str) -> str:
        """Canonical persona for *name* (alias-aware); 404 on unknown."""
        if not name or name == DEFAULT_PERSONA:
            return self._default
        try:
            persona = get_persona(name).name
        except ValueError:
            raise UnknownPersonaError(
                name, (DEFAULT_PERSONA, *self._allowed)
            ) from None
        if persona not in self._allowed:
            raise UnknownPersonaError(name, (DEFAULT_PERSONA, *self._allowed))
        return persona

    def engine(self, name: str) -> MatchingEngine:
        """The engine serving *name*, built on first use."""
        persona = self.resolve(name)
        with self._lock:
            engine = self._engines.get(persona)
            if engine is None:
                engine = self._factory(persona)
                self._engines[persona] = engine
            return engine

    def engines(self) -> "dict[str, MatchingEngine]":
        """Engines built so far (for stats reconciliation and shutdown)."""
        with self._lock:
            return dict(self._engines)
