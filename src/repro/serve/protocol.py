"""Request/response schema of the serving gateway.

One :class:`MatchRequest` is a single candidate pair from one tenant,
optionally pinned to a named model persona and carrying an absolute
deadline on the gateway's clock.  The gateway always answers with a
:class:`MatchResponse` — never a traceback: routing, admission, and
overload problems come back as structured 4xx/5xx-style statuses so a
caller (or a load generator) can account for every request.

Status taxonomy (``status`` / ``code`` / typical ``reason``):

* ``ok`` / 200 — answered; ``source`` says by whom (``backend``,
  ``cache``, ``fallback`` from inside the engine, or ``degraded`` when
  the gateway itself answered with the threshold matcher under overload
  or an open circuit breaker).
* ``error`` / 404 — the request named an unknown persona; the reason
  carries the one-line ``unknown persona: ...`` message.
* ``rejected`` / 429 — refused by admission control before entering the
  queue (``rate_limited`` / ``quota_exceeded`` / ``saturated``).
* ``shed`` / 503 — load-shed on a full queue with degradation disabled.
* ``expired`` / 504 — the deadline passed on arrival or while queued;
  the pair was never dispatched to a backend.

Deadline semantics: ``deadline`` is *absolute* simulated/monotonic time
(same clock the gateway was built with).  The gateway checks it on
arrival and again at dequeue time, so a request that outlives its
deadline in the queue is expired, never dispatched.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "DEFAULT_PERSONA",
    "MatchRequest",
    "MatchResponse",
    "STATUS_CODES",
]

#: persona name that routes to the gateway's configured default engine.
DEFAULT_PERSONA = "default"

#: status → wire-style numeric code (4xx/5xx shaped, JSON-friendly).
STATUS_CODES = {
    "ok": 200,
    "error": 404,
    "rejected": 429,
    "shed": 503,
    "expired": 504,
}


@dataclass(frozen=True)
class MatchRequest:
    """One tenant's request to match a single candidate pair."""

    tenant: str
    left: str
    right: str
    #: persona name, paper alias, or ``"default"``.
    persona: str = DEFAULT_PERSONA
    #: absolute gateway-clock deadline; None = no deadline.
    deadline: float | None = None
    #: caller-chosen id echoed back in the response (for correlation).
    request_id: str = ""

    def __post_init__(self) -> None:
        if not self.tenant:
            raise ValueError("tenant must be a non-empty string")
        if not isinstance(self.left, str) or not isinstance(self.right, str):
            raise ValueError("left/right must be description strings")


@dataclass(frozen=True)
class MatchResponse:
    """The gateway's structured answer for one request."""

    request: MatchRequest
    status: str
    #: parsed matching decision (None unless the request was answered).
    decision: bool | None
    #: raw model completion (None for cache-normalized/degraded answers).
    response: str | None
    #: "backend" | "cache" | "fallback" | "degraded" | "" (unanswered).
    source: str
    #: canonical persona the request routed to ("" when routing failed).
    persona: str
    #: machine-readable detail for non-ok statuses.
    reason: str = ""

    def __post_init__(self) -> None:
        if self.status not in STATUS_CODES:
            raise ValueError(f"unknown response status {self.status!r}")

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def code(self) -> int:
        """4xx/5xx-style numeric code for the status."""
        return STATUS_CODES[self.status]

    def as_dict(self) -> dict[str, object]:
        """JSON-serializable view (used by the CLI and the load generator)."""
        return {
            "tenant": self.request.tenant,
            "request_id": self.request.request_id,
            "persona": self.persona,
            "status": self.status,
            "code": self.code,
            "decision": self.decision,
            "source": self.source,
            "reason": self.reason,
        }
