"""Command-line interface: ``repro-em``.

Subcommands::

    repro-em datasets                      # Table 1 statistics
    repro-em export --dataset wdc-small --out DIR
    repro-em match "desc a" "desc b" [--model NAME] [--prompt NAME]
    repro-em zero-shot [--model NAME] [--datasets a,b,...]
    repro-em finetune --model NAME --train wdc-small
        [--explanations STYLE] [--selection STRATEGY] [--eval a,b,...]
    repro-em sensitivity --model NAME --dataset NAME
    repro-em engine (--pairs FILE | --dataset NAME) [--model NAME]
        [--prompt NAME] [--batch-size N] [--cache-size N] [--stats] [--quiet]
    repro-em resolve --dataset NAME [--split test] [--limit N] [--model NAME]
        [--blocking token|embedding|minhash] [--top-k N] [--threshold F]
        [--mode transitive|correlation] [--min-agreement F]
        [--format text|json] [--golden] [--stats] [--no-short-circuit]
    repro-em index (--dataset NAME [--split test] | --synthetic N)
        [--num-perm N] [--threshold F] [--bands B --rows R]
        [--min-similarity F] [--shards N] [--seed N] [--top-k N]
        [--stats] [--format text|json]
    repro-em lint [PATHS ...] [--rule ID ...] [--format text|json]
        [--list-rules] [--deep] [--baseline FILE] [--update-baseline]
        [--jobs N] [--changed-only] [--base REF] [--timings]
    repro-em chaos [--fault-rate F] [--seed N ...] [--kill-every N]
        [--pairs N] [--records N] [--journal FILE] [--format text|json]
    repro-em serve [--offered-load F] [--requests N] [--tenants N]
        [--persona NAME] [--dataset NAME] [--seed N] [--deadline F]
        [--queue-capacity N] [--batch-size N] [--max-concurrency N]
        [--rate F] [--burst F] [--quota N] [--shed-only]
        [--chaos [--fault-rate F]] [--format text|json]

Every ``--model``/``--persona`` option accepts canonical registry names
and paper aliases; an unknown name exits with a one-line ``unknown
persona: ...`` message listing the choices, never a traceback.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.core.pipeline import TailorMatch
from repro.core.sensitivity import prompt_sensitivity
from repro.datasets.io import write_dataset
from repro.datasets.registry import DATASET_NAMES, load_dataset, table1_statistics
from repro.eval.reports import format_table
from repro.llm.registry import MODEL_NAMES, get_persona
from repro.prompts.templates import get_prompt

__all__ = ["main", "build_parser"]


def _resolve_model(name: str) -> str:
    """Canonical persona for *name* (alias-aware); one-line exit on unknowns.

    Model names are validated here rather than with argparse ``choices``
    so paper aliases resolve and a typo produces the same structured
    message everywhere instead of argparse's usage dump.
    """
    try:
        return get_persona(name).name
    except ValueError:
        raise SystemExit(
            f"unknown persona: {name} (choose from {', '.join(MODEL_NAMES)})"
        ) from None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-em",
        description="TailorMatch reproduction: fine-tuning LLMs for entity matching",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="print Table 1 dataset statistics")

    export = sub.add_parser("export", help="write a dataset as JSONL")
    export.add_argument("--dataset", required=True, choices=DATASET_NAMES)
    export.add_argument("--out", required=True)

    match = sub.add_parser("match", help="match a single pair of descriptions")
    match.add_argument("left")
    match.add_argument("right")
    match.add_argument("--model", default="gpt-4o-mini")
    match.add_argument("--prompt", default="default")

    zero = sub.add_parser("zero-shot", help="zero-shot F1 over benchmarks")
    zero.add_argument("--model", default="llama-3.1-8b")
    zero.add_argument("--datasets", default="wdc-small")

    ft = sub.add_parser("finetune", help="fine-tune and evaluate")
    ft.add_argument("--model", default="llama-3.1-8b")
    ft.add_argument("--train", default="wdc-small", choices=DATASET_NAMES)
    ft.add_argument("--explanations", default=None)
    ft.add_argument("--selection", default=None)
    ft.add_argument("--generation", action="store_true")
    ft.add_argument("--eval", dest="eval_datasets", default=None)

    sens = sub.add_parser("sensitivity", help="prompt-sensitivity analysis")
    sens.add_argument("--model", default="llama-3.1-8b")
    sens.add_argument("--dataset", default="wdc-small", choices=DATASET_NAMES)

    val = sub.add_parser("validate", help="integrity-check a dataset")
    val.add_argument("--dataset", help="built-in dataset name")
    val.add_argument("--path", help="directory written by 'repro-em export'")

    eng = sub.add_parser(
        "engine", help="match a candidate-pair workload through the online engine"
    )
    eng.add_argument(
        "--pairs",
        help="file of candidate pairs: JSONL objects with left/right "
        "(either description strings or record objects), or TAB-separated "
        "'left<TAB>right' lines",
    )
    eng.add_argument("--dataset", choices=DATASET_NAMES,
                     help="match a registered dataset's test split instead")
    eng.add_argument("--model", default="llama-3.1-8b")
    eng.add_argument("--prompt", default="default")
    eng.add_argument("--batch-size", type=int, default=32)
    eng.add_argument("--cache-size", type=int, default=4096)
    eng.add_argument("--stats", action="store_true",
                     help="print engine counters and latency percentiles")
    eng.add_argument("--quiet", action="store_true",
                     help="suppress per-pair verdict lines")

    res = sub.add_parser(
        "resolve",
        help="resolve a dataset's records into entity clusters "
        "(blocker -> engine -> clusters -> cluster-level report)",
    )
    res.add_argument("--dataset", required=True, choices=DATASET_NAMES)
    res.add_argument("--split", default="test", choices=("train", "valid", "test"))
    res.add_argument("--limit", type=int, default=None, metavar="N",
                     help="resolve only the first N pairs of the split")
    res.add_argument("--model", default="llama-3.1-8b")
    res.add_argument("--prompt", default="default")
    res.add_argument("--blocker", "--blocking", dest="blocker", default="token",
                     choices=("token", "embedding", "minhash"))
    res.add_argument("--min-shared", type=int, default=1,
                     help="token blocker: min shared tokens per candidate")
    res.add_argument("--k", type=int, default=5,
                     help="embedding blocker: neighbours per record")
    res.add_argument("--top-k", type=int, default=10,
                     help="minhash blocker: candidates kept per record")
    res.add_argument("--threshold", type=float, default=0.5,
                     help="minhash blocker: target Jaccard threshold for "
                     "the LSH banding solver")
    res.add_argument("--mode", default="transitive",
                     choices=("transitive", "correlation"))
    res.add_argument("--min-agreement", type=float, default=0.5,
                     help="correlation mode: min cross-cluster agreement "
                     "for a merge")
    res.add_argument("--batch-size", type=int, default=32)
    res.add_argument("--cache-size", type=int, default=4096)
    res.add_argument("--no-short-circuit", action="store_true",
                     help="decide every candidate pair, even ones already "
                     "co-clustered")
    res.add_argument("--golden", action="store_true",
                     help="include one golden record per non-singleton cluster")
    res.add_argument("--stats", action="store_true",
                     help="include the engine stats snapshot "
                     "(cache hits, batches, fallbacks)")
    res.add_argument("--format", choices=("text", "json"), default="text")

    idx = sub.add_parser(
        "index",
        help="build a MinHash/LSH candidate index over a corpus and "
        "report its composition and recall-vs-candidate-size curve",
    )
    source = idx.add_mutually_exclusive_group(required=True)
    source.add_argument("--dataset", choices=DATASET_NAMES)
    source.add_argument("--synthetic", type=int, metavar="N",
                        help="index an N-record seeded synthetic dedup corpus")
    idx.add_argument("--split", default="test",
                     choices=("train", "valid", "test"))
    idx.add_argument("--corruption", type=float, default=0.25,
                     help="synthetic corpus: duplicate corruption level")
    idx.add_argument("--num-perm", type=int, default=128,
                     help="signature width (ignored when --bands/--rows set)")
    idx.add_argument("--threshold", type=float, default=0.5,
                     help="target Jaccard threshold for the banding solver")
    idx.add_argument("--bands", type=int, default=None)
    idx.add_argument("--rows", type=int, default=None)
    idx.add_argument("--min-similarity", type=float, default=0.0,
                     help="estimated-Jaccard floor on candidates")
    idx.add_argument("--shards", type=int, default=8)
    idx.add_argument("--seed", type=int, default=0)
    idx.add_argument("--top-k", type=int, default=10,
                     help="deepest rank cut-off in the recall curve")
    idx.add_argument("--stats", action="store_true",
                     help="include the recall-vs-candidate-size curve "
                     "against the corpus ground truth")
    idx.add_argument("--format", choices=("text", "json"), default="text")

    lint = sub.add_parser(
        "lint", help="check repro-specific invariants (determinism, "
        "marker safety, round-trips, engine hygiene)"
    )
    lint.add_argument(
        "paths", nargs="*",
        help="files or directories to lint (default: src/repro, scripts, "
        "benchmarks)",
    )
    lint.add_argument(
        "--rule", action="append", dest="rules", metavar="ID",
        help="run only this rule (repeatable)",
    )
    lint.add_argument("--format", choices=("text", "json"), default="text")
    lint.add_argument("--list-rules", action="store_true",
                      help="list registered rules and exit")
    lint.add_argument(
        "--deep", action="store_true",
        help="also run the whole-program analyzer (symbol table, call "
        "graph, taint/lock/exception rules) over src/repro",
    )
    lint.add_argument(
        "--baseline", metavar="FILE", default=None,
        help="accepted-findings file; only non-baseline findings fail "
        "(default: lint-baseline.json when it exists, --deep only)",
    )
    lint.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline file from the current findings and "
        "exit 0 (ratchet: review the diff — it should only shrink)",
    )
    lint.add_argument(
        "--jobs", type=int, default=os.cpu_count() or 1, metavar="N",
        help="thread-pool width for the per-file parse+walk phase "
        "(default: CPU count; output is identical to a serial run)",
    )
    lint.add_argument(
        "--changed-only", action="store_true",
        help="lint only files changed vs --base (git diff + untracked); "
        "--deep still analyzes the whole program and says so in the "
        "summary's scope block",
    )
    lint.add_argument(
        "--cache", metavar="DIR", default=None,
        help="incremental --deep cache directory: an unchanged tree "
        "reuses the previous findings verbatim, a changed one reuses "
        "per-file parse trees (safe to delete at any time)",
    )
    lint.add_argument(
        "--base", metavar="REF", default="HEAD",
        help="git ref --changed-only diffs against (default: HEAD)",
    )
    lint.add_argument(
        "--timings", action="store_true",
        help="include per-analysis wall-clock in the --deep JSON summary "
        "(off by default: timings break byte-identical output)",
    )

    chaos = sub.add_parser(
        "chaos",
        help="run the fault-injection invariant harness "
        "(swept fault rates, plus an optional kill/resume round-trip)",
    )
    chaos.add_argument(
        "--fault-rate", type=float, default=0.3,
        help="chaos fault rate; the sweep always also runs rate 0 "
        "(transparency check)",
    )
    chaos.add_argument(
        "--seed", action="append", type=int, dest="seeds", metavar="N",
        help="chaos seed (repeatable; default: 0 1 2)",
    )
    chaos.add_argument(
        "--kill-every", type=int, default=0, metavar="N",
        help="also run a kill/resume round-trip crashing every N backend "
        "batches (0 = skip)",
    )
    chaos.add_argument("--pairs", type=int, default=96,
                       help="matching workload size per run")
    chaos.add_argument("--records", type=int, default=30,
                       help="resolution workload size per run")
    chaos.add_argument(
        "--journal", default=None, metavar="FILE",
        help="journal path for the kill/resume round-trip "
        "(default: a temporary file)",
    )
    chaos.add_argument(
        "--shards", type=int, default=0, metavar="N",
        help="also run a sharded kill/resume round-trip over N "
        "journal-backed shards (requires --kill-every; 0 = skip)",
    )
    chaos.add_argument(
        "--kill-shard", action="append", type=int, dest="kill_shards",
        metavar="I",
        help="shard to kill and resume mid-run (repeatable; default: a "
        "deterministic pair of shards)",
    )
    chaos.add_argument(
        "--shard-dir", default=None, metavar="DIR",
        help="directory for the sharded round-trip's journals "
        "(default: a temporary directory)",
    )
    chaos.add_argument("--format", choices=("text", "json"), default="text")

    serve = sub.add_parser(
        "serve",
        help="replay a deterministic load session through the request "
        "gateway (router -> admission -> queue -> engine) on simulated time",
    )
    serve.add_argument("--offered-load", type=float, default=200.0,
                       help="mean arrival rate, requests/second (Poisson)")
    serve.add_argument("--requests", type=int, default=64,
                       help="total requests in the session")
    serve.add_argument("--tenants", type=int, default=2,
                       help="tenants cycled round-robin over the requests")
    serve.add_argument("--persona", default="default",
                       help="persona every request names ('default' routes "
                       "to the gateway default)")
    serve.add_argument("--dataset", default="wdc-small", choices=DATASET_NAMES,
                       help="dataset whose test split supplies the pairs")
    serve.add_argument("--seed", type=int, default=0,
                       help="load-generator seed (arrival gaps + pair draws)")
    serve.add_argument("--deadline", type=float, default=None, metavar="SECS",
                       help="per-request relative deadline (default: none)")
    serve.add_argument("--queue-capacity", type=int, default=32)
    serve.add_argument("--batch-size", type=int, default=8,
                       help="dispatch chunk size (micro-batch ceiling)")
    serve.add_argument("--max-concurrency", type=int, default=None,
                       help="global cap on admitted in-flight requests")
    serve.add_argument("--rate", type=float, default=None,
                       help="per-tenant sustained admissions/second")
    serve.add_argument("--burst", type=float, default=None,
                       help="per-tenant token-bucket capacity")
    serve.add_argument("--quota", type=int, default=None,
                       help="per-tenant lifetime admission ceiling")
    serve.add_argument("--shed-only", action="store_true",
                       help="shed on queue overflow instead of degrading "
                       "to the threshold baseline")
    serve.add_argument("--chaos", action="store_true",
                       help="run the gateway chaos sweep instead of a "
                       "load session")
    serve.add_argument("--fault-rate", type=float, default=0.3,
                       help="--chaos: fault rate; the sweep always also "
                       "runs rate 0 (transparency check)")
    serve.add_argument("--chaos-seed", action="append", type=int,
                       dest="chaos_seeds", metavar="N",
                       help="--chaos: sweep seed (repeatable; default: 0 1 2)")
    serve.add_argument("--format", choices=("text", "json"), default="text")
    return parser


def _cmd_datasets() -> int:
    rows = []
    for name, splits in table1_statistics().items():
        row = [name]
        for split in ("train", "valid", "test"):
            pos, neg = splits[split]
            row.extend([pos, neg])
        rows.append(row)
    print(
        format_table(
            ["dataset", "train+", "train-", "valid+", "valid-", "test+", "test-"],
            rows,
            title="Table 1: dataset statistics",
        )
    )
    return 0


def _cmd_match(args: argparse.Namespace) -> int:
    tm = TailorMatch(args.model)
    verdict = tm.match(args.left, args.right, prompt=args.prompt)
    print("MATCH" if verdict else "NO MATCH")
    return 0


def _cmd_zero_shot(args: argparse.Namespace) -> int:
    tm = TailorMatch(args.model)
    names = [n.strip() for n in args.datasets.split(",") if n.strip()]
    rows = []
    for name in names:
        result = tm.evaluate(None, name)
        rows.append(
            [name, f"{result.scores.precision:.2f}", f"{result.scores.recall:.2f}",
             f"{result.f1:.2f}"]
        )
    print(format_table(["dataset", "P", "R", "F1"], rows,
                       title=f"zero-shot: {args.model}"))
    return 0


def _cmd_finetune(args: argparse.Namespace) -> int:
    tm = TailorMatch(args.model)
    tuned = tm.fine_tune(
        args.train,
        explanations=args.explanations,
        selection=args.selection,
        generation=args.generation,
    )
    eval_names = (
        [n.strip() for n in args.eval_datasets.split(",") if n.strip()]
        if args.eval_datasets
        else [args.train]
    )
    rows = []
    for name in eval_names:
        zero = tm.evaluate(None, name)
        ft = tm.evaluate(tuned, name)
        rows.append([name, f"{zero.f1:.2f}", f"{ft.f1:.2f}", f"{ft.f1 - zero.f1:+.2f}"])
    print(
        format_table(
            ["dataset", "zero-shot F1", "fine-tuned F1", "delta"],
            rows,
            title=f"{args.model} fine-tuned on {args.train} "
            f"({tuned.describe()})",
        )
    )
    return 0


def _cmd_sensitivity(args: argparse.Namespace) -> int:
    tm = TailorMatch(args.model)
    zero = prompt_sensitivity(tm.zero_shot, args.dataset)
    tuned = tm.fine_tune(args.dataset)
    post = prompt_sensitivity(tuned, args.dataset)
    rows = [
        ["zero-shot"] + [f"{zero.f1_by_prompt[p]:.2f}" for p in zero.f1_by_prompt]
        + [f"{zero.std:.2f}"],
        ["fine-tuned"] + [f"{post.f1_by_prompt[p]:.2f}" for p in post.f1_by_prompt]
        + [f"{post.std:.2f}"],
    ]
    print(
        format_table(
            ["state"] + list(zero.f1_by_prompt) + ["std"],
            rows,
            title=f"prompt sensitivity: {args.model} on {args.dataset}",
        )
    )
    return 0


def _read_pairs_file(path: str) -> list[tuple[str, str]]:
    """Parse a workload file: JSONL objects or TAB-separated lines.

    Every malformed line exits with a one-line ``path:lineno: reason``
    message instead of a traceback, so shell pipelines can surface the
    offending line directly.
    """
    import json

    def bad_line(lineno: int, reason: str) -> SystemExit:
        return SystemExit(f"{path}:{lineno}: {reason}")

    pairs: list[tuple[str, str]] = []
    try:
        handle = open(path, encoding="utf-8")
    except OSError as exc:
        raise SystemExit(f"cannot read pairs file {path}: {exc.strerror}")
    with handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip("\n")
            if not line.strip():
                continue
            if line.lstrip().startswith("{"):
                try:
                    obj = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise bad_line(lineno, f"invalid JSON: {exc.msg}") from None
                try:
                    left, right = obj["left"], obj["right"]
                except KeyError as exc:
                    raise bad_line(
                        lineno, f"JSON object is missing key {exc.args[0]!r}"
                    ) from None
                if isinstance(left, dict):  # dataset-export record objects
                    left = left.get("description")
                if isinstance(right, dict):
                    right = right.get("description")
                if not isinstance(left, str) or not isinstance(right, str):
                    raise bad_line(
                        lineno,
                        "left/right must be strings or records with a "
                        "'description' field",
                    )
            else:
                fields = line.split("\t")
                if len(fields) != 2:
                    raise bad_line(
                        lineno,
                        "expected JSON object or 'left<TAB>right', got "
                        f"{len(fields) - 1} tab(s): {line!r}",
                    )
                left, right = fields
            pairs.append((left, right))
    return pairs


def _cmd_engine(args: argparse.Namespace) -> int:
    from repro.engine import MatchingEngine, ResultCache

    if bool(args.pairs) == bool(args.dataset):
        print("specify exactly one of --pairs or --dataset")
        return 2
    engine = MatchingEngine.for_model(
        args.model,
        template=get_prompt(args.prompt),
        batch_size=args.batch_size,
        cache=ResultCache(max_size=args.cache_size),
    )
    if args.dataset:
        results = engine.match_split(load_dataset(args.dataset).test)
    else:
        results = engine.match_pairs(_read_pairs_file(args.pairs))
    matches = sum(r.decision for r in results)
    if not args.quiet:
        for result in results:
            verdict = "MATCH" if result.decision else "NO MATCH"
            print(f"{verdict}\t[{result.source}]\t{result.left}\t{result.right}")
    print(
        f"{len(results)} pairs matched through {engine.backend.name}: "
        f"{matches} matches, {len(results) - matches} non-matches"
    )
    if args.stats:
        print(engine.stats.render())
    return 0


def _cmd_resolve(args: argparse.Namespace) -> int:
    import json

    from repro.blocking import EmbeddingBlocker, TokenBlocker
    from repro.datasets.schema import Split
    from repro.engine import MatchingEngine, ResultCache
    from repro.resolve import (
        cluster_scores,
        gold_clustering,
        resolve_blocking,
        split_records,
    )

    split = load_dataset(args.dataset).split(args.split)
    if args.limit is not None:
        if args.limit <= 0:
            print("--limit must be positive")
            return 2
        split = Split(name=split.name, pairs=split.pairs[: args.limit])
    left, right = split_records(split)
    if args.blocker == "token":
        blocker = TokenBlocker(min_shared=args.min_shared)
    elif args.blocker == "minhash":
        from repro.index import MinHashBlocker

        blocker = MinHashBlocker(k=args.top_k, threshold=args.threshold)
    else:
        blocker = EmbeddingBlocker(k=args.k)
    blocking = blocker.block(left, right)
    engine = MatchingEngine.for_model(
        args.model,
        template=get_prompt(args.prompt),
        batch_size=args.batch_size,
        cache=ResultCache(max_size=args.cache_size),
    )
    report = resolve_blocking(
        engine,
        blocking,
        mode=args.mode,
        min_agreement=args.min_agreement,
        chunk_size=args.batch_size,
        short_circuit=not args.no_short_circuit,
    )
    scores = cluster_scores(report.clustering, gold_clustering(split))

    payload: dict[str, object] = {
        "schema_version": 1,
        "dataset": args.dataset,
        "split": args.split,
        "pairs": len(split),
        "model": args.model,
        "blocker": args.blocker,
        "mode": args.mode,
        "short_circuit": not args.no_short_circuit,
        **report.as_dict(),
        "scores": scores.as_dict(),
    }
    if args.golden:
        payload["golden"] = [
            {
                "cluster_id": cluster_id,
                "size": len(report.clustering.cluster_of(cluster_id)),
                "description": record.description,
                "attributes": dict(record.attributes),
            }
            for cluster_id, record in sorted(report.golden.items())
            if len(report.clustering.cluster_of(cluster_id)) > 1
        ]
    if args.stats:
        # Latency percentiles are wall-clock measurements — everything
        # else in the payload is deterministic, so keep them out of the
        # JSON snapshot (byte-identical across runs) and leave them to
        # the text rendering below.
        snapshot = engine.stats.as_dict()
        snapshot.pop("latency", None)
        payload["engine_stats"] = snapshot

    if args.format == "json":
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(
        f"{args.dataset}/{args.split}: {payload['records']} records -> "
        f"{payload['clusters']} clusters "
        f"({report.candidates} candidates, {report.engine_calls} engine "
        f"calls, {report.short_circuited} short-circuited)"
    )
    histogram = report.clustering.size_histogram()
    sizes = ", ".join(f"{size}x{count}" for size, count in histogram.items())
    print(f"cluster sizes: {sizes}")
    rows = [
        ["B-cubed", f"{scores.b3_precision:.2f}", f"{scores.b3_recall:.2f}",
         f"{scores.b3_f1:.2f}"],
        ["pairwise", f"{scores.pairwise.precision:.2f}",
         f"{scores.pairwise.recall:.2f}", f"{scores.pairwise.f1:.2f}"],
    ]
    print(format_table(["metric", "P", "R", "F1"], rows,
                       title=f"cluster-level scores (ARI {scores.ari:.4f})"))
    if args.golden:
        for entry in payload["golden"]:
            print(f"golden[{entry['cluster_id']}] x{entry['size']}: "
                  f"{entry['description']}")
    if args.stats:
        print(engine.stats.render())
    return 0


def _cmd_index(args: argparse.Namespace) -> int:
    import json
    import time

    from repro.blocking.base import recall_curve
    from repro.index import MinHashCandidateIndex

    if (args.bands is None) != (args.rows is None):
        print("pass both of --bands/--rows, or neither")
        return 2
    if args.top_k <= 0:
        print("--top-k must be positive")
        return 2
    if args.synthetic is not None:
        from repro.datasets.synthetic import synthetic_dedup_corpus

        if args.synthetic <= 0:
            print("--synthetic must be positive")
            return 2
        corpus = synthetic_dedup_corpus(
            args.synthetic, seed=args.seed, corruption=args.corruption
        )
        records = list(corpus.records)
        true_pairs = set(corpus.true_pairs)
        source = f"synthetic:{args.synthetic}"
    else:
        from repro.resolve import split_records

        split = load_dataset(args.dataset).split(args.split)
        left, right = split_records(split)
        from dataclasses import replace

        # Side-prefixed ids keep the two collections' id spaces apart,
        # mirroring pipeline.node_id.
        records = [
            replace(record, record_id=f"{side}:{record.record_id}")
            for side, collection in (("l", left), ("r", right))
            for record in collection
        ]
        true_pairs = {
            tuple(sorted((f"l:{pair.left.record_id}",
                          f"r:{pair.right.record_id}")))
            for pair in split.pairs
            if pair.label
        }
        source = f"{args.dataset}/{args.split}"

    index = MinHashCandidateIndex(
        num_perm=args.num_perm,
        threshold=args.threshold,
        bands=args.bands,
        rows=args.rows,
        seed=args.seed,
        shards=args.shards,
        min_similarity=args.min_similarity,
    )
    start = time.perf_counter()
    for record in records:
        index.add(record.record_id, record.description)
    elapsed = time.perf_counter() - start

    payload: dict[str, object] = {
        "schema_version": 1,
        "source": source,
        "records": len(records),
        "seed": args.seed,
        "index": index.stats(),
    }
    if args.stats:
        ranked = {
            record.record_id: [
                entry.record_id
                for entry in index.top_candidates(
                    record.record_id, k=args.top_k
                )
            ]
            for record in records
        }
        ks = [k for k in (1, 2, 5, 10, 20, 50, 100) if k <= args.top_k]
        if args.top_k not in ks:
            ks.append(args.top_k)
        payload["true_pairs"] = len(true_pairs)
        payload["recall_curve"] = recall_curve(
            ranked, true_pairs, [*ks, None]
        )

    if args.format == "json":
        # Ingest timing is wall-clock — it stays out of the JSON payload
        # so two runs of the same command are byte-identical.
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    stats = payload["index"]
    print(
        f"{source}: {len(records)} records -> {stats['buckets']} buckets "
        f"over {stats['shards']} shards "
        f"(bands {stats['bands']} x rows {stats['rows']}, "
        f"{stats['unindexable']} unindexable)"
    )
    print(
        f"ingest: {len(records) / elapsed:.0f} records/sec "
        f"({elapsed:.2f}s), max bucket {stats['max_bucket']}"
    )
    if args.stats:
        rows = [
            [
                "all" if point["k"] is None else str(point["k"]),
                f"{point['recall']:.4f}",
                str(point["candidates"]),
                f"{point['candidates_per_record']:.2f}",
            ]
            for point in payload["recall_curve"]
        ]
        print(format_table(
            ["k", "recall", "cand pairs", "cand/record"], rows,
            title=f"recall vs candidate-set size "
            f"({payload['true_pairs']} true pairs)",
        ))
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.lint import RULES, format_json, format_text, run_lint
    from repro.lint.deep import run_deep
    from repro.lint.walker import changed_files

    if args.list_rules:
        # Importing the deep runner above registers project-scoped rules.
        for rule in sorted(RULES.values(), key=lambda r: (r.family, r.id)):
            print(f"{rule.id:24s} [{rule.family}/{rule.scope}] "
                  f"{rule.description}")
        return 0
    if not args.deep:
        if args.rules and any(
            RULES[r].scope == "project" for r in args.rules if r in RULES
        ):
            print("lint: project-scoped rules require --deep", file=sys.stderr)
            return 2
        if args.update_baseline:
            print("lint: --update-baseline requires --deep", file=sys.stderr)
            return 2
        if args.cache:
            print("lint: --cache requires --deep", file=sys.stderr)
            return 2
    paths = args.paths or None
    if args.changed_only:
        if paths:
            print("lint: --changed-only and explicit paths are mutually "
                  "exclusive", file=sys.stderr)
            return 2
        try:
            changed = changed_files(".", base=args.base)
        except ValueError as exc:
            print(f"lint: {exc}", file=sys.stderr)
            return 2
        paths = changed
    try:
        if args.changed_only and not paths:
            findings = []  # nothing changed: shallow phase has no input.
        else:
            findings = run_lint(
                ".", paths=paths, rules=args.rules, jobs=args.jobs
            )
    except (ValueError, FileNotFoundError) as exc:
        print(f"lint: {exc}", file=sys.stderr)
        return 2
    summary = None
    if args.deep:
        cache = None
        if args.cache:
            from repro.lint.cache import AnalysisCache

            cache = AnalysisCache(Path(args.cache))
        try:
            deep_findings, summary = run_deep(
                ".",
                rules=args.rules,
                timings=args.timings,
                cache=cache,
                changed=paths if args.changed_only else None,
            )
        except ValueError as exc:
            print(f"lint: {exc}", file=sys.stderr)
            return 2
        findings = sorted(findings + deep_findings, key=lambda f: f.sort_key())

    baseline_path = Path(args.baseline) if args.baseline else Path(
        "lint-baseline.json"
    )
    if args.update_baseline:
        from repro.lint.baseline import write_baseline

        payload = write_baseline(findings, baseline_path)
        print(f"lint: baseline updated: {payload['count']} accepted "
              f"finding(s) -> {baseline_path}")
        return 0
    if args.deep and (args.baseline or baseline_path.is_file()):
        from repro.lint.baseline import filter_baselined, load_baseline

        findings = filter_baselined(findings, load_baseline(baseline_path))

    if args.format == "json":
        print(format_json(findings, summary=summary))
    else:
        print(format_text(findings))
    return 1 if findings else 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    import json
    import tempfile
    from pathlib import Path

    from repro.faults import (
        kill_resume_roundtrip,
        sharded_kill_resume_roundtrip,
        sweep,
    )

    if not 0.0 <= args.fault_rate <= 1.0:
        print("--fault-rate must be in [0, 1]")
        return 2
    if args.shards > 0 and args.kill_every <= 0:
        print("--shards needs --kill-every (the per-shard crash cadence)")
        return 2
    seeds = tuple(args.seeds) if args.seeds else (0, 1, 2)
    rates = (0.0,) if args.fault_rate == 0.0 else (0.0, args.fault_rate)
    reports = sweep(
        seeds=seeds,
        rates=rates,
        pair_count=args.pairs,
        record_count=args.records,
    )
    payload: dict[str, object] = {
        "schema_version": 1,
        "seeds": list(seeds),
        "fault_rates": list(rates),
        "runs": [report.as_dict() for report in reports],
        "ok": all(report.ok for report in reports),
    }
    if args.kill_every > 0:
        if args.journal:
            roundtrip = kill_resume_roundtrip(
                args.journal,
                seed=seeds[0],
                record_count=args.records,
                kill_every=args.kill_every,
            )
        else:
            with tempfile.TemporaryDirectory() as tmp:
                roundtrip = kill_resume_roundtrip(
                    Path(tmp) / "chaos-journal.jsonl",
                    seed=seeds[0],
                    record_count=args.records,
                    kill_every=args.kill_every,
                )
        payload["kill_resume"] = {
            "seed": roundtrip["seed"],
            "records": roundtrip["records"],
            "kill_every": roundtrip["kill_every"],
            "crashes": roundtrip["crashes"],
            "identical": roundtrip["identical"],
            "clusters": len(roundtrip["resumed"]["clusters"]),
            "decisions": len(roundtrip["resumed"]["decisions"]),
        }
        payload["ok"] = bool(payload["ok"]) and roundtrip["identical"]

    if args.shards > 0:
        def sharded_run(seed: int, base: "str | Path") -> dict:
            run = sharded_kill_resume_roundtrip(
                Path(base) / f"seed-{seed}",
                seed=seed,
                record_count=args.records,
                shards=args.shards,
                kill_every=args.kill_every,
                kill_shards=tuple(args.kill_shards or ()),
            )
            return {
                "seed": run["seed"],
                "shards": run["shards"],
                "kill_every": run["kill_every"],
                "targets": run["targets"],
                "kills": run["kills"],
                "crashes": run["crashes"],
                "clean_kills": run["clean_kills"],
                "violations": run["violations"],
                "identical": run["identical"],
                "clusters": len(run["resumed"]["clusters"]),
            }

        if args.shard_dir:
            sharded = [sharded_run(seed, args.shard_dir) for seed in seeds]
        else:
            with tempfile.TemporaryDirectory() as tmp:
                sharded = [sharded_run(seed, tmp) for seed in seeds]
        payload["sharded_kill_resume"] = sharded
        payload["ok"] = bool(payload["ok"]) and all(
            run["identical"] for run in sharded
        )

    if args.format == "json":
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0 if payload["ok"] else 1

    rows = []
    for report in reports:
        rows.append([
            report.kind,
            report.seed,
            f"{report.fault_rate:.2f}",
            report.requests,
            sum(report.injected.values()),
            report.sources.get("fallback", 0),
            "ok" if report.ok else "FAIL",
        ])
    print(format_table(
        ["workload", "seed", "rate", "requests", "faults", "fallbacks", "verdict"],
        rows,
        title=f"chaos sweep ({len(reports)} runs, all invariants checked)",
    ))
    for report in reports:
        for violation in report.violations:
            print(f"VIOLATION [{report.kind} seed={report.seed} "
                  f"rate={report.fault_rate}]: {violation}")
    if args.kill_every > 0:
        verdict = payload["kill_resume"]
        state = "byte-identical" if verdict["identical"] else "DIVERGED"
        print(
            f"kill/resume: {verdict['crashes']} crashes every "
            f"{verdict['kill_every']} batches over {verdict['records']} "
            f"records -> {state} "
            f"({verdict['clusters']} clusters, {verdict['decisions']} decisions)"
        )
    if args.shards > 0:
        for run in payload["sharded_kill_resume"]:
            state = "byte-identical" if run["identical"] else "DIVERGED"
            print(
                f"sharded kill/resume [seed={run['seed']}]: "
                f"{run['shards']} shards, {len(run['kills'])} kills on "
                f"shards {run['targets']} ({run['crashes']} mid-ingest, "
                f"{run['clean_kills']} clean) -> {state} "
                f"({run['clusters']} clusters)"
            )
            for violation in run["violations"]:
                print(f"VIOLATION [sharded seed={run['seed']}]: {violation}")
    return 0 if payload["ok"] else 1


def _cmd_serve_chaos(args: argparse.Namespace) -> int:
    import json

    from repro.serve import serve_sweep

    if not 0.0 <= args.fault_rate <= 1.0:
        print("--fault-rate must be in [0, 1]")
        return 2
    seeds = tuple(args.chaos_seeds) if args.chaos_seeds else (0, 1, 2)
    rates = (0.0,) if args.fault_rate == 0.0 else (0.0, args.fault_rate)
    reports = serve_sweep(
        seeds=seeds, rates=rates, requests=args.requests, tenants=args.tenants
    )
    payload: dict[str, object] = {
        "schema_version": 1,
        "seeds": list(seeds),
        "fault_rates": list(rates),
        "runs": [report.as_dict() for report in reports],
        "ok": all(report.ok for report in reports),
    }
    if args.format == "json":
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0 if payload["ok"] else 1
    rows = [
        [
            report.seed,
            f"{report.fault_rate:.2f}",
            report.requests,
            sum(report.injected.values()),
            report.sources.get("fallback", 0)
            + report.sources.get("degraded", 0),
            "ok" if report.ok else "FAIL",
        ]
        for report in reports
    ]
    print(format_table(
        ["seed", "rate", "requests", "faults", "degraded", "verdict"],
        rows,
        title=f"gateway chaos sweep ({len(reports)} runs, "
        "all invariants checked)",
    ))
    for report in reports:
        for violation in report.violations:
            print(f"VIOLATION [serve seed={report.seed} "
                  f"rate={report.fault_rate}]: {violation}")
    return 0 if payload["ok"] else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import json
    import math

    from repro.engine import MatchingEngine, ResultCache
    from repro.engine.scheduler import Scheduler
    from repro.faults.clock import ManualClock
    from repro.serve import (
        AdmissionController,
        Gateway,
        LoadProfile,
        PersonaRouter,
        TenantPolicy,
        UnknownPersonaError,
        generate_arrivals,
        replay_simulated,
        summarize,
    )

    if args.chaos:
        return _cmd_serve_chaos(args)

    # Simulated time end to end (arrivals, deadlines, token buckets,
    # scheduler flushes), so the whole session — JSON output included —
    # is byte-identical across runs and machines.
    clock = ManualClock()
    router = PersonaRouter(
        engine_factory=lambda name: MatchingEngine.for_model(
            name,
            batch_size=args.batch_size,
            scheduler=Scheduler(max_batch_size=args.batch_size, clock=clock),
            cache=ResultCache(max_size=4096),
        ),
    )
    try:
        persona = router.resolve(args.persona)
    except UnknownPersonaError as exc:
        raise SystemExit(str(exc)) from None
    admission = AdmissionController(
        clock=clock,
        default_policy=TenantPolicy(
            rate=args.rate if args.rate is not None else math.inf,
            burst=args.burst if args.burst is not None else math.inf,
            quota=args.quota,
        ),
        max_concurrency=args.max_concurrency,
    )
    gateway = Gateway(
        router,
        admission,
        queue_capacity=args.queue_capacity,
        batch_size=args.batch_size,
        workers=0,
        clock=clock,
        degrade_on_overload=not args.shed_only,
    )
    try:
        profile = LoadProfile(
            offered_load=args.offered_load,
            requests=args.requests,
            tenants=args.tenants,
            persona=args.persona,
            deadline=args.deadline,
            seed=args.seed,
        )
    except ValueError as exc:
        print(f"serve: {exc}")
        return 2
    arrivals = generate_arrivals(profile, load_dataset(args.dataset).test.pairs)
    outcomes = asyncio.run(replay_simulated(gateway, arrivals, clock))
    summary = summarize(outcomes)
    violations = gateway.stats.violations(in_queue=gateway.queue_depth)
    violations += gateway.stats.reconcile_engines(router.engines())

    payload: dict[str, object] = {
        "schema_version": 1,
        "offered_load": args.offered_load,
        "requests": args.requests,
        "tenants": args.tenants,
        "persona": persona,
        "dataset": args.dataset,
        "seed": args.seed,
        "deadline": args.deadline,
        "queue_capacity": args.queue_capacity,
        "batch_size": args.batch_size,
        **summary,
        "gateway_stats": gateway.stats.as_dict(),
        "engine_stats": {
            name: {
                k: v for k, v in engine.stats.as_dict().items()
                if k != "latency"
            }
            for name, engine in sorted(router.engines().items())
        },
        "violations": list(violations),
        "ok": not violations,
    }
    if args.format == "json":
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0 if payload["ok"] else 1
    latency = ", ".join(
        f"{name}={seconds * 1e3:.2f}ms"
        for name, seconds in summary["latency"].items()
    ) or "n/a"
    print(
        f"{args.dataset} via {persona}: {summary['answered']}/"
        f"{summary['requests']} answered at {args.offered_load:g} req/s "
        f"over {summary['duration']:.3f}s simulated "
        f"(goodput {summary['goodput']:g} req/s)"
    )
    print(f"latency: {latency}")
    print("statuses: " + ", ".join(
        f"{k}={v}" for k, v in summary["statuses"].items()
    ))
    print("sources: " + (", ".join(
        f"{k}={v}" for k, v in summary["sources"].items()
    ) or "n/a"))
    stats = gateway.stats.as_dict()
    rows = [
        [tenant, lane["submitted"], lane["rejected"], lane["admitted"],
         lane["completed"], lane["degraded"], lane["shed"], lane["expired"]]
        for tenant, lane in stats["tenants"].items()
    ]
    print(format_table(
        ["tenant", "submitted", "rejected", "admitted", "completed",
         "degraded", "shed", "expired"],
        rows,
        title=f"per-tenant funnel (queue high-water "
        f"{stats['queue_high_water']})",
    ))
    for violation in violations:
        print(f"VIOLATION: {violation}")
    return 0 if payload["ok"] else 1


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.datasets.io import read_dataset
    from repro.datasets.validation import validate_dataset

    if bool(args.dataset) == bool(args.path):
        print("specify exactly one of --dataset or --path")
        return 2
    dataset = load_dataset(args.dataset) if args.dataset else read_dataset(args.path)
    report = validate_dataset(dataset)
    if report.ok:
        print(f"{dataset.name}: OK")
        return 0
    for problem in report.problems:
        print(f"PROBLEM: {problem}")
    return 1


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if getattr(args, "model", None) is not None:
        args.model = _resolve_model(args.model)
    if args.command == "datasets":
        return _cmd_datasets()
    if args.command == "export":
        write_dataset(load_dataset(args.dataset), args.out)
        print(f"wrote {args.dataset} to {args.out}")
        return 0
    if args.command == "match":
        return _cmd_match(args)
    if args.command == "zero-shot":
        return _cmd_zero_shot(args)
    if args.command == "finetune":
        return _cmd_finetune(args)
    if args.command == "sensitivity":
        return _cmd_sensitivity(args)
    if args.command == "validate":
        return _cmd_validate(args)
    if args.command == "engine":
        return _cmd_engine(args)
    if args.command == "index":
        return _cmd_index(args)
    if args.command == "resolve":
        return _cmd_resolve(args)
    if args.command == "lint":
        return _cmd_lint(args)
    if args.command == "chaos":
        return _cmd_chaos(args)
    if args.command == "serve":
        return _cmd_serve(args)
    raise AssertionError(f"unhandled command {args.command}")


if __name__ == "__main__":
    sys.exit(main())
