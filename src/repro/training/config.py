"""Fine-tuning hyperparameter defaults.

The paper keeps provider-recommended defaults and does not search
hyperparameters; we encode both provider profiles verbatim.  ``lr_scale``
converts the nominal learning rate of a billion-parameter transformer into
an effective step size for the simulated low-dimensional scoring layer —
it is a fixed property of the substrate, identical for all experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = [
    "DEFAULT_SEED",
    "FineTuneConfig",
    "open_source_defaults",
    "hosted_defaults",
    "defaults_for",
]

#: The constant random seed used "across all libraries" in the paper.
DEFAULT_SEED = 42

#: Substrate constant: nominal transformer lr → effective simulator lr.
LR_SCALE = 40.0


@dataclass(frozen=True)
class FineTuneConfig:
    """All knobs of one fine-tuning run."""

    epochs: int = 10
    batch_size: int = 16
    learning_rate: float = 2e-4
    #: hosted models express lr as a multiplier of a provider base rate
    lr_multiplier: float | None = None
    lora_rank: int = 64
    lora_alpha: float = 16.0
    dropout: float = 0.1
    weight_decay: float = 0.1
    #: weight of auxiliary explanation losses (0 disables them)
    aux_weight: float = 0.0
    #: label smoothing — bounds the optimal logits, preventing runaway
    #: adapter growth when the training data is (partly) unlearnable
    label_smoothing: float = 0.02
    #: how many trailing per-epoch checkpoints are available for validation
    #: (None = all; hosted providers expose only the last three)
    checkpoint_window: int | None = None
    seed: int = DEFAULT_SEED

    @property
    def effective_lr(self) -> float:
        """Step size actually used by the simulated optimizer."""
        if self.lr_multiplier is not None:
            base = 2e-4 * self.lr_multiplier  # provider base rate × multiplier
        else:
            base = self.learning_rate
        return base * LR_SCALE

    def with_epochs(self, epochs: int) -> "FineTuneConfig":
        return replace(self, epochs=epochs)

    def with_aux_weight(self, aux_weight: float) -> "FineTuneConfig":
        return replace(self, aux_weight=aux_weight)


def open_source_defaults(seed: int = DEFAULT_SEED) -> FineTuneConfig:
    """LoRA defaults used for the Llama models (paper §2)."""
    return FineTuneConfig(
        epochs=10,
        batch_size=16,
        learning_rate=2e-4,
        lora_rank=64,
        lora_alpha=16.0,
        dropout=0.1,
        checkpoint_window=None,
        seed=seed,
    )


def hosted_defaults(seed: int = DEFAULT_SEED) -> FineTuneConfig:
    """OpenAI defaults: lr multiplier 1.8, batch 16, 3 visible checkpoints."""
    return FineTuneConfig(
        epochs=10,
        batch_size=16,
        lr_multiplier=1.8,
        lora_rank=64,
        lora_alpha=16.0,
        dropout=0.0,
        checkpoint_window=3,
        seed=seed,
    )


def defaults_for(kind: str, seed: int = DEFAULT_SEED) -> FineTuneConfig:
    """Provider defaults for a persona kind ('open-source' or 'hosted')."""
    if kind == "open-source":
        return open_source_defaults(seed)
    if kind == "hosted":
        return hosted_defaults(seed)
    raise ValueError(f"unknown persona kind {kind!r}")
