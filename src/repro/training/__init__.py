"""Fine-tuning engine: optimizers, losses, trainer loop, checkpoints.

Implements the paper's two fine-tuning setups:

* **open-source** (Llama): LoRA with alpha 16, dropout 0.1, rank 64,
  learning rate 2e-4, 10 epochs, a checkpoint after every epoch validated
  with custom callbacks;
* **hosted** (OpenAI): learning-rate multiplier 1.8, batch size 16,
  10 epochs, but only the final checkpoint plus two intermediate ones are
  available for validation (the provider's limitation).
"""

from repro.training.config import (
    DEFAULT_SEED,
    FineTuneConfig,
    hosted_defaults,
    open_source_defaults,
)
from repro.training.checkpoints import Checkpoint, CheckpointLog
from repro.training.trainer import FineTuneResult, TrainingExample, fine_tune

__all__ = [
    "Checkpoint",
    "CheckpointLog",
    "DEFAULT_SEED",
    "FineTuneConfig",
    "FineTuneResult",
    "TrainingExample",
    "fine_tune",
    "hosted_defaults",
    "open_source_defaults",
]
