"""Per-epoch checkpoints and best-checkpoint selection.

Open-source runs validate every epoch ("custom evaluation callbacks" in the
paper); hosted runs only expose the final checkpoint plus two intermediate
ones, which limits validation — both policies are expressed through
``checkpoint_window``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.llm.adapter import LoRAAdapter

__all__ = ["Checkpoint", "CheckpointLog"]


@dataclass
class Checkpoint:
    """Adapter snapshot after one epoch."""

    epoch: int
    adapter: LoRAAdapter
    train_loss: float
    valid_f1: float | None = None


@dataclass
class CheckpointLog:
    """All checkpoints of one fine-tuning run."""

    checkpoints: list[Checkpoint] = field(default_factory=list)

    def add(self, checkpoint: Checkpoint) -> None:
        self.checkpoints.append(checkpoint)

    def __len__(self) -> int:
        return len(self.checkpoints)

    def visible(self, window: int | None) -> list[Checkpoint]:
        """Checkpoints available for validation under a provider window.

        ``window=None`` exposes every epoch (local training); ``window=k``
        exposes only the trailing *k* (hosted providers).
        """
        if window is None:
            return list(self.checkpoints)
        return self.checkpoints[-window:]

    def best(self, window: int | None = None) -> Checkpoint:
        """Highest-validation-F1 checkpoint among the visible ones.

        Falls back to the final checkpoint when no validation scores exist.
        """
        candidates = self.visible(window)
        if not candidates:
            raise ValueError("no checkpoints recorded")
        scored = [c for c in candidates if c.valid_f1 is not None]
        if not scored:
            return candidates[-1]
        return max(scored, key=lambda c: (c.valid_f1, c.epoch))
