"""The fine-tuning loop.

Trains a LoRA adapter on labelled entity pairs (optionally augmented with
auxiliary explanation targets) against a frozen prior head.  Mirrors the
paper's setup: mini-batch training for 10 epochs, a checkpoint per epoch,
validation-F1 checkpoint selection, deterministic seeding.

The loss is binary cross-entropy on the match logit plus (when explanation
targets are present) a mean-squared auxiliary loss predicted from the
shared LoRA projection ``A φ̃`` — see DESIGN.md §5 for why that shared
projection is the vehicle by which structured explanations regularize the
adapter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro._util import derive_rng
from repro.datasets.schema import EntityPair
from repro.llm.adapter import LoRAAdapter
from repro.llm.prior import HEAD_COMPONENTS, PriorHead
from repro.training.checkpoints import Checkpoint, CheckpointLog
from repro.training.config import FineTuneConfig
from repro.training.optim import Adam

__all__ = ["TrainingExample", "FineTuneResult", "fine_tune"]


@dataclass(frozen=True)
class TrainingExample:
    """One fine-tuning example: a labelled pair plus optional aux targets."""

    pair: EntityPair
    label: bool
    #: auxiliary regression targets derived from an explanation (or None)
    aux: np.ndarray | None = None


@dataclass
class FineTuneResult:
    """Outcome of one fine-tuning run."""

    adapter: LoRAAdapter
    log: CheckpointLog
    best_epoch: int
    final_train_loss: float

    @property
    def epochs_trained(self) -> int:
        return len(self.log)


def _sigmoid(z: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(z, -30.0, 30.0)))


def fine_tune(
    prior: PriorHead,
    examples: Sequence[TrainingExample],
    config: FineTuneConfig,
    prompt_bias: float = 0.0,
    validate: Callable[[LoRAAdapter], float] | None = None,
) -> FineTuneResult:
    """Train a LoRA adapter on *examples* against the frozen *prior*.

    Parameters
    ----------
    prior:
        The persona's frozen head; supplies the representation and the base
        logits the adapter is trained around.
    examples:
        Labelled (optionally explanation-augmented) pairs.
    config:
        Hyperparameters (provider defaults unless an experiment overrides).
    prompt_bias:
        The persona's bias for the prompt used during fine-tuning — included
        in the forward pass so the adapter trains under the same conditions
        it will be queried with.
    validate:
        Optional callback mapping an adapter snapshot to validation F1;
        drives best-checkpoint selection.
    """
    if not examples:
        raise ValueError("cannot fine-tune on an empty training set")

    pairs = [ex.pair for ex in examples]
    x_all = prior.observe(pairs)  # persona reading (n × d)
    y_all = np.array([ex.label for ex in examples], dtype=float)
    if config.label_smoothing > 0.0:
        eps = config.label_smoothing
        y_all = y_all * (1.0 - 2.0 * eps) + eps
    noise_all = prior.perception_noise(pairs)
    base_logits = (
        x_all @ (prior.v @ prior.W0)
        + x_all @ prior.feature_bias_vector()
        + prompt_bias
        + noise_all
    )

    aux_dims = {ex.aux.size for ex in examples if ex.aux is not None}
    if len(aux_dims) > 1:
        raise ValueError(f"inconsistent auxiliary target sizes: {sorted(aux_dims)}")
    aux_dim = aux_dims.pop() if aux_dims else 0
    if aux_dim:
        aux_all = np.stack(
            [ex.aux if ex.aux is not None else np.zeros(aux_dim) for ex in examples]
        )
        aux_mask = np.array([ex.aux is not None for ex in examples], dtype=float)
    else:
        aux_all = np.zeros((len(examples), 0))
        aux_mask = np.zeros(len(examples))

    d = x_all.shape[1]
    adapter = LoRAAdapter.init(
        d=d,
        k=HEAD_COMPONENTS,
        rank=config.lora_rank,
        alpha=config.lora_alpha,
        aux_dim=aux_dim,
        seed=config.seed,
    )
    optimizer = Adam(lr=config.effective_lr, weight_decay=config.weight_decay)
    rng = derive_rng(config.seed, "trainer")
    n = len(examples)
    scaling = adapter.scaling
    v = prior.v
    log = CheckpointLog()
    epoch_loss = 0.0

    for epoch in range(1, config.epochs + 1):
        order = rng.permutation(n)
        epoch_loss = 0.0
        for start in range(0, n, config.batch_size):
            idx = order[start: start + config.batch_size]
            x = x_all[idx]
            if config.dropout > 0.0:
                keep = (rng.random(x.shape) >= config.dropout).astype(float)
                x = x * keep / (1.0 - config.dropout)
            y = y_all[idx]
            base = base_logits[idx]

            proj = x @ adapter.A.T                      # (b × r)
            bv = adapter.B.T @ v                        # (r,)
            logits = base + scaling * (proj @ bv)
            p = _sigmoid(logits)
            g = (p - y) / len(idx)                      # BCE gradient

            grad_B = scaling * np.outer(v, g @ proj)    # (k × r)
            grad_A = scaling * np.outer(bv, g @ x)      # (r × d)

            batch_loss = float(
                -np.mean(
                    y * np.log(np.clip(p, 1e-9, 1.0))
                    + (1 - y) * np.log(np.clip(1 - p, 1e-9, 1.0))
                )
            )

            grads: dict[str, np.ndarray] = {"A": grad_A, "B": grad_B}
            if aux_dim and config.aux_weight > 0.0:
                mask = aux_mask[idx][:, None]
                residual = (proj @ adapter.C.T - aux_all[idx]) * mask  # (b × m)
                lam = config.aux_weight / max(1.0, float(mask.sum()))
                grads["C"] = lam * residual.T @ proj
                grads["A"] = grads["A"] + lam * (residual @ adapter.C).T @ x
                batch_loss += float(0.5 * lam * np.sum(residual**2))

            params = {"A": adapter.A, "B": adapter.B}
            if "C" in grads:
                params["C"] = adapter.C
            optimizer.step(params, grads)
            epoch_loss += batch_loss * len(idx)

        epoch_loss /= n
        snapshot = adapter.copy()
        valid_f1 = validate(snapshot) if validate is not None else None
        log.add(
            Checkpoint(
                epoch=epoch,
                adapter=snapshot,
                train_loss=epoch_loss,
                valid_f1=valid_f1,
            )
        )

    best = log.best(config.checkpoint_window)
    return FineTuneResult(
        adapter=best.adapter,
        log=log,
        best_epoch=best.epoch,
        final_train_loss=epoch_loss,
    )
