"""Numpy optimizers for the LoRA parameters."""

from __future__ import annotations

import numpy as np

__all__ = ["Adam", "SGD"]


class SGD:
    """Plain SGD with optional weight decay."""

    def __init__(self, lr: float, weight_decay: float = 0.0) -> None:
        self.lr = lr
        self.weight_decay = weight_decay

    def step(self, params: dict[str, np.ndarray], grads: dict[str, np.ndarray]) -> None:
        for name, grad in grads.items():
            param = params[name]
            if self.weight_decay:
                grad = grad + self.weight_decay * param
            param -= self.lr * grad


class Adam:
    """Adam with decoupled weight decay (AdamW-style)."""

    def __init__(
        self,
        lr: float,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m: dict[str, np.ndarray] = {}
        self._v: dict[str, np.ndarray] = {}
        self._t = 0

    def step(self, params: dict[str, np.ndarray], grads: dict[str, np.ndarray]) -> None:
        """In-place update of every parameter that has a gradient."""
        self._t += 1
        for name, grad in grads.items():
            param = params[name]
            m = self._m.setdefault(name, np.zeros_like(param))
            v = self._v.setdefault(name, np.zeros_like(param))
            m *= self.beta1
            m += (1 - self.beta1) * grad
            v *= self.beta2
            v += (1 - self.beta2) * grad**2
            m_hat = m / (1 - self.beta1**self._t)
            v_hat = v / (1 - self.beta2**self._t)
            if self.weight_decay:
                param -= self.lr * self.weight_decay * param
            param -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
