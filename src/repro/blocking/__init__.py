"""Blocking: candidate-pair generation for entity matching.

The paper's benchmarks ship pre-blocked candidate pairs, but a deployed
TailorMatch pipeline (Figure 1) sits downstream of a blocker that reduces
the quadratic record space to a candidate set.  This package provides the
two standard families so the library covers the full EM pipeline:

* :class:`~repro.blocking.embedding.EmbeddingBlocker` — nearest-neighbour
  blocking in the embedding space (the modern default);
* :class:`~repro.blocking.token.TokenBlocker` — classic shared-token
  (inverted-index) blocking.

Both report pair-completeness / reduction-ratio quality metrics.
"""

from repro.blocking.base import BlockingResult, blocking_quality
from repro.blocking.embedding import EmbeddingBlocker
from repro.blocking.token import TokenBlocker

__all__ = [
    "BlockingResult",
    "EmbeddingBlocker",
    "TokenBlocker",
    "blocking_quality",
]
