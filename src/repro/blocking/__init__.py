"""Blocking: candidate-pair generation for entity matching.

The paper's benchmarks ship pre-blocked candidate pairs, but a deployed
TailorMatch pipeline (Figure 1) sits downstream of a blocker that reduces
the quadratic record space to a candidate set.  This package provides the
two standard families so the library covers the full EM pipeline:

* :class:`~repro.blocking.embedding.EmbeddingBlocker` — nearest-neighbour
  blocking in the embedding space (the modern default);
* :class:`~repro.blocking.token.TokenBlocker` — classic shared-token
  (inverted-index) blocking;
* :class:`~repro.index.MinHashBlocker` (in ``repro.index``) — MinHash/
  LSH blocking with top-k ranking, for corpora where token blocking's
  candidate sets blow up.

All report pair-completeness / reduction-ratio quality metrics;
:func:`~repro.blocking.base.recall_at_k` and
:func:`~repro.blocking.base.recall_curve` measure recall against
candidate-set size for ranked candidate lists.
"""

from repro.blocking.base import (
    BlockingResult,
    blocking_quality,
    recall_at_k,
    recall_curve,
)
from repro.blocking.embedding import EmbeddingBlocker
from repro.blocking.token import TokenBlocker, blocking_tokens

__all__ = [
    "BlockingResult",
    "EmbeddingBlocker",
    "TokenBlocker",
    "blocking_quality",
    "blocking_tokens",
    "recall_at_k",
    "recall_curve",
]
