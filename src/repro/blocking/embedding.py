"""Embedding-based nearest-neighbour blocking."""

from __future__ import annotations

import numpy as np

from repro.blocking.base import BlockingResult
from repro.datasets.schema import Record
from repro.llm.embeddings import EmbeddingModel

__all__ = ["EmbeddingBlocker"]


class EmbeddingBlocker:
    """Keep, per left record, the *k* most similar right records.

    An optional cosine-similarity floor prunes neighbours that are near
    only relatively (sparse regions of the embedding space).
    """

    def __init__(
        self,
        k: int = 5,
        min_similarity: float = 0.0,
        embedding: EmbeddingModel | None = None,
    ) -> None:
        if k <= 0:
            raise ValueError("k must be positive")
        self.k = k
        self.min_similarity = min_similarity
        self.embedding = embedding or EmbeddingModel()

    def block(
        self, left: list[Record], right: list[Record]
    ) -> BlockingResult:
        """Produce candidate pairs between two record collections."""
        if not left or not right:
            return BlockingResult(tuple(left), tuple(right), frozenset())
        left_matrix = self.embedding.embed_many([r.description for r in left])
        right_matrix = self.embedding.embed_many([r.description for r in right])
        similarities = left_matrix @ right_matrix.T  # (n_left × n_right)
        k = min(self.k, len(right))
        candidates: set[tuple[int, int]] = set()
        for i in range(len(left)):
            top = np.argpartition(-similarities[i], k - 1)[:k]
            for j in top:
                if similarities[i, int(j)] >= self.min_similarity:
                    candidates.add((i, int(j)))
        return BlockingResult(tuple(left), tuple(right), frozenset(candidates))
