"""Classic shared-token (inverted index) blocking.

Also home of :func:`blocking_tokens`, the tokenizer every candidate
generator in the blocking layer shares (:class:`TokenBlocker`,
:class:`~repro.resolve.incremental.TokenCandidateIndex`, and the
MinHash/LSH subsystem in :mod:`repro.index`).  It differs from the
simulated LLM's :func:`~repro.llm.tokenizer.tokenize` in three
deliberate ways:

* **Unicode casefold** — ``"Straße"`` and ``"STRASSE"`` produce the same
  tokens (``str.casefold``, not ``str.lower``), and non-ASCII letters
  are kept instead of dropped, so records in any script can block
  against each other;
* **no degenerate universal bucket** — punctuation-only and empty
  descriptions tokenize to *nothing* (no placeholder/empty token), so
  such records never all collide into one catch-all bucket that would
  pair every degenerate record with every other;
* it is a blocking-layer contract: changing the LLM tokenizer must not
  silently change candidate generation, and vice versa.

On plain ASCII text the two tokenizers agree, so switching the blocking
layer to :func:`blocking_tokens` left every ASCII benchmark unchanged.
"""

from __future__ import annotations

import re
from collections import defaultdict

from repro.blocking.base import BlockingResult
from repro.datasets.schema import Record

__all__ = ["TokenBlocker", "blocking_tokens"]

#: word/number runs (any script) with ``./-`` joins kept, underscores
#: excluded — the unicode-aware counterpart of ``repro._util._TOKEN_RE``.
_TOKEN_RE = re.compile(r"[^\W_]+(?:[./-][^\W_]+)*")


def blocking_tokens(text: str) -> list[str]:
    """Casefolded word/number tokens for candidate generation.

    Punctuation-only and empty inputs return ``[]`` — callers must treat
    a record with no tokens as having *no* blocking key at all, never as
    a member of some shared "empty" bucket.
    """
    return _TOKEN_RE.findall(text.casefold())


class TokenBlocker:
    """Candidate pairs share at least ``min_shared`` non-stop tokens.

    Tokens occurring in more than ``max_token_frequency`` of one side's
    records are treated as stop words (they would otherwise explode the
    candidate set — e.g. 'the', 'new', a ubiquitous category word).
    """

    def __init__(self, min_shared: int = 1, max_token_frequency: float = 0.2) -> None:
        if min_shared <= 0:
            raise ValueError("min_shared must be positive")
        if not 0.0 < max_token_frequency <= 1.0:
            raise ValueError("max_token_frequency must be in (0, 1]")
        self.min_shared = min_shared
        self.max_token_frequency = max_token_frequency

    def _index(self, records: list[Record]) -> dict[str, set[int]]:
        index: dict[str, set[int]] = defaultdict(set)
        for i, record in enumerate(records):
            # repro-lint: disable=set-iteration — order-insensitive: builds
            # an inverted index of sets; downstream consumes it via counts
            # and a frozenset of candidates only.
            for token in set(blocking_tokens(record.description)):
                index[token].add(i)
        # at least one record per token must survive, or tiny
        # collections would prune everything
        cutoff = max(1.0, self.max_token_frequency * len(records))
        return {t: ids for t, ids in index.items() if len(ids) <= cutoff}

    def block(self, left: list[Record], right: list[Record]) -> BlockingResult:
        """Produce candidate pairs between two record collections."""
        right_index = self._index(right)
        shared_counts: dict[tuple[int, int], int] = defaultdict(int)
        left_index = self._index(left)
        for token, left_ids in left_index.items():
            right_ids = right_index.get(token)
            if not right_ids:
                continue
            for i in left_ids:
                for j in right_ids:
                    shared_counts[(i, j)] += 1
        candidates = frozenset(
            pair for pair, count in shared_counts.items()
            if count >= self.min_shared
        )
        return BlockingResult(tuple(left), tuple(right), candidates)
