"""Shared blocking data structures and quality metrics."""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets.schema import Record

__all__ = ["BlockingResult", "blocking_quality"]


@dataclass(frozen=True)
class BlockingResult:
    """Candidate pairs produced by a blocker over two record collections.

    ``candidates`` holds (left_index, right_index) pairs into the input
    collections.
    """

    left: tuple[Record, ...]
    right: tuple[Record, ...]
    candidates: frozenset[tuple[int, int]]

    @property
    def reduction_ratio(self) -> float:
        """1 − |candidates| / |left × right| (higher = fewer comparisons)."""
        total = len(self.left) * len(self.right)
        if total == 0:
            return 0.0
        return 1.0 - len(self.candidates) / total

    def contains(self, left_index: int, right_index: int) -> bool:
        return (left_index, right_index) in self.candidates


def blocking_quality(
    result: BlockingResult, true_matches: set[tuple[int, int]]
) -> dict[str, float]:
    """Pair completeness (recall of true matches) and reduction ratio.

    ``true_matches`` are (left_index, right_index) ground-truth pairs.
    """
    if true_matches:
        found = sum(1 for pair in true_matches if pair in result.candidates)
        completeness = found / len(true_matches)
    else:
        completeness = 1.0
    return {
        "pair_completeness": completeness,
        "reduction_ratio": result.reduction_ratio,
        "candidates": float(len(result.candidates)),
    }
