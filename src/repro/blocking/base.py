"""Shared blocking data structures and quality metrics."""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets.schema import Record

__all__ = ["BlockingResult", "blocking_quality"]


@dataclass(frozen=True)
class BlockingResult:
    """Candidate pairs produced by a blocker over two record collections.

    ``candidates`` holds (left_index, right_index) pairs into the input
    collections.
    """

    left: tuple[Record, ...]
    right: tuple[Record, ...]
    candidates: frozenset[tuple[int, int]]

    @property
    def reduction_ratio(self) -> float:
        """1 − |candidates| / |left × right| (higher = fewer comparisons).

        An empty comparison space (either side empty) reduces to 1.0 by
        convention: there is nothing to compare, so every possible
        comparison (all zero of them) was avoided.
        """
        total = len(self.left) * len(self.right)
        if total == 0:
            return 1.0
        return 1.0 - len(self.candidates) / total

    def contains(self, left_index: int, right_index: int) -> bool:
        return (left_index, right_index) in self.candidates


def blocking_quality(
    result: BlockingResult, true_matches: set[tuple[int, int]]
) -> dict[str, float]:
    """Pair completeness, pair quality, and reduction ratio.

    ``true_matches`` are (left_index, right_index) ground-truth pairs.
    Every ratio is defined on empty inputs instead of dividing by zero:

    * ``pair_completeness`` (true matches surviving blocking) is 1.0
      with no true matches — nothing could be lost;
    * ``pair_quality`` (true matches per candidate, blocking precision)
      is 1.0 when there are neither candidates nor true matches, and
      0.0 when candidates exist but no gold does — candidates with no
      conceivable payoff;
    * ``reduction_ratio`` is 1.0 over an empty comparison space (see
      :attr:`BlockingResult.reduction_ratio`).
    """
    found = sum(1 for pair in true_matches if pair in result.candidates)
    if true_matches:
        completeness = found / len(true_matches)
    else:
        completeness = 1.0
    if result.candidates:
        quality = found / len(result.candidates)
    else:
        quality = 1.0 if not true_matches else 0.0
    return {
        "pair_completeness": completeness,
        "pair_quality": quality,
        "reduction_ratio": result.reduction_ratio,
        "candidates": float(len(result.candidates)),
    }
