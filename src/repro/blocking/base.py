"""Shared blocking data structures and quality metrics."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.datasets.schema import Record

__all__ = ["BlockingResult", "blocking_quality", "recall_at_k", "recall_curve"]


@dataclass(frozen=True)
class BlockingResult:
    """Candidate pairs produced by a blocker over two record collections.

    ``candidates`` holds (left_index, right_index) pairs into the input
    collections.
    """

    left: tuple[Record, ...]
    right: tuple[Record, ...]
    candidates: frozenset[tuple[int, int]]

    @property
    def reduction_ratio(self) -> float:
        """1 − |candidates| / |left × right| (higher = fewer comparisons).

        An empty comparison space (either side empty) reduces to 1.0 by
        convention: there is nothing to compare, so every possible
        comparison (all zero of them) was avoided.
        """
        total = len(self.left) * len(self.right)
        if total == 0:
            return 1.0
        return 1.0 - len(self.candidates) / total

    def contains(self, left_index: int, right_index: int) -> bool:
        return (left_index, right_index) in self.candidates


def blocking_quality(
    result: BlockingResult, true_matches: set[tuple[int, int]]
) -> dict[str, float]:
    """Pair completeness, pair quality, and reduction ratio.

    ``true_matches`` are (left_index, right_index) ground-truth pairs.
    Every ratio is defined on empty inputs instead of dividing by zero:

    * ``pair_completeness`` (true matches surviving blocking) is 1.0
      with no true matches — nothing could be lost;
    * ``pair_quality`` (true matches per candidate, blocking precision)
      is 1.0 when there are neither candidates nor true matches, and
      0.0 when candidates exist but no gold does — candidates with no
      conceivable payoff;
    * ``reduction_ratio`` is 1.0 over an empty comparison space (see
      :attr:`BlockingResult.reduction_ratio`).
    """
    found = sum(1 for pair in true_matches if pair in result.candidates)
    if true_matches:
        completeness = found / len(true_matches)
    else:
        completeness = 1.0
    if result.candidates:
        quality = found / len(result.candidates)
    else:
        quality = 1.0 if not true_matches else 0.0
    return {
        "pair_completeness": completeness,
        "pair_quality": quality,
        "reduction_ratio": result.reduction_ratio,
        "candidates": float(len(result.candidates)),
    }


# --------------------------------------------- ranked candidate generation


def _pair_ranks(
    ranked: Mapping[str, Sequence[str]]
) -> dict[tuple[str, str], int]:
    """Best (lowest) rank of every unordered candidate pair.

    ``ranked`` maps a record id to its candidate ids, best first.  A pair
    may appear in both directions (dedup workloads rank symmetrically);
    the pair counts at cut-off *k* as soon as **either** direction ranks
    it inside the top *k*, so its effective rank is the minimum of the
    two.  Self-pairs are ignored.
    """
    best: dict[tuple[str, str], int] = {}
    for left, names in ranked.items():
        for rank, right in enumerate(names):
            if right == left:
                continue
            pair = (left, right) if left <= right else (right, left)
            prev = best.get(pair)
            if prev is None or rank < prev:
                best[pair] = rank
    return best


def recall_curve(
    ranked: Mapping[str, Sequence[str]],
    true_pairs: Iterable[tuple[str, str]],
    ks: Sequence[int | None],
) -> list[dict[str, object]]:
    """Recall and candidate-set size at each cut-off in *ks*.

    One point per *k* (``None`` = no cut-off: every ranked candidate
    counts), each a dict with ``k``, ``recall`` (true pairs whose best
    rank beats the cut-off, over all true pairs; 1.0 with no truth),
    ``candidates`` (distinct unordered pairs inside the cut-off) and
    ``candidates_per_record``.  This is the **single** code path behind
    ``benchmarks/bench_blocking_scale.py`` and ``repro-em index
    --stats`` — the benchmark and the CLI cannot disagree on what
    "recall at k" means.
    """
    best = _pair_ranks(ranked)
    truth = sorted({tuple(sorted(p)) for p in true_pairs})
    records = max(1, len(ranked))
    pair_ranks = np.fromiter(best.values(), dtype=np.int64, count=len(best))
    missing = np.iinfo(np.int64).max
    truth_ranks = np.fromiter(
        (best.get(pair, missing) for pair in truth),
        dtype=np.int64,
        count=len(truth),
    )
    curve: list[dict[str, object]] = []
    for k in ks:
        if k is not None and k <= 0:
            raise ValueError("k must be positive (or None for no cut-off)")
        limit = missing if k is None else k
        candidates = int((pair_ranks < limit).sum())
        found = int((truth_ranks < limit).sum())
        curve.append({
            "k": None if k is None else int(k),
            "recall": found / len(truth) if truth else 1.0,
            "candidates": candidates,
            "candidates_per_record": candidates / records,
        })
    return curve


def recall_at_k(
    ranked: Mapping[str, Sequence[str]],
    true_pairs: Iterable[tuple[str, str]],
    k: int | None = None,
) -> dict[str, object]:
    """Recall and candidate count at one cut-off (see :func:`recall_curve`)."""
    return recall_curve(ranked, true_pairs, [k])[0]
