"""Building matching prompts and parsing entity descriptions back out.

The chat interface of the simulated models works on plain prompt strings,
so the model needs to recover the two entity descriptions (and recognize
the question wording) from the prompt text — mirroring how a real LLM reads
the serialized pair out of the prompt.
"""

from __future__ import annotations

import re

from repro.datasets.schema import EntityPair
from repro.prompts.templates import (
    DEFAULT_PROMPT,
    PROMPTS,
    PromptTemplate,
    unescape_description,
)

__all__ = ["build_matching_prompt", "extract_entities", "identify_prompt"]

# The captures keep the exact surface form (including leading/trailing
# whitespace inside a description): everything the model "perceives" —
# observation noise, hedging — is keyed on the description string, so a
# lossy round-trip would make the chat path disagree with the vectorized
# path on records whose serialization ends in whitespace.  Rendered
# descriptions are newline-escaped (see ``escape_description``), which
# makes the ``\nEntity 2:`` separator unambiguous even for descriptions
# that themselves contain ``Entity 1:``/``Entity 2:``-shaped payloads.
_ENTITY_RE = re.compile(
    r"Entity 1: ?(?P<left>.*?)\nEntity 2: ?(?P<right>.*?)\n?$",
    re.DOTALL,
)


def build_matching_prompt(
    pair: EntityPair, template: PromptTemplate = DEFAULT_PROMPT
) -> str:
    """Render the matching prompt for one candidate pair."""
    return template.render(pair.left.description, pair.right.description)


def extract_entities(prompt: str) -> tuple[str, str]:
    """Recover the two entity descriptions from a matching prompt.

    Raises ``ValueError`` when the prompt does not contain the
    ``Entity 1: ... / Entity 2: ...`` block.
    """
    match = _ENTITY_RE.search(prompt)
    if match is None:
        raise ValueError(
            "prompt does not contain 'Entity 1: ...' / 'Entity 2: ...' lines"
        )
    return (
        unescape_description(match.group("left")),
        unescape_description(match.group("right")),
    )


def identify_prompt(prompt: str) -> PromptTemplate | None:
    """Identify which known template a prompt was rendered from.

    Returns None for custom wordings (their bias is then derived from the
    raw question text instead of a template name).
    """
    for template in sorted(
        PROMPTS.values(), key=lambda t: len(t.question), reverse=True
    ):
        if template.question in prompt:
            return template
    return None
