"""Prompt templates and builders for matching, explanations and generation."""

from repro.prompts.templates import (
    ALTERNATIVE_PROMPTS,
    DEFAULT_PROMPT,
    PROMPTS,
    PromptTemplate,
    get_prompt,
)
from repro.prompts.builder import build_matching_prompt, extract_entities

__all__ = [
    "ALTERNATIVE_PROMPTS",
    "DEFAULT_PROMPT",
    "PROMPTS",
    "PromptTemplate",
    "build_matching_prompt",
    "extract_entities",
    "get_prompt",
]
