"""The prompt inventory of the paper.

Matching prompts (§3 and §3.3):

* ``default`` — the fine-tuning prompt of Figure 2 ("Do the two entity
  descriptions refer to the same real-world product?");
* ``simple-free`` / ``complex-force`` / ``simple-force`` — the three
  alternative query prompts of the prompt-sensitivity study.

Plus the instruction prompts used to generate explanations (Dimension 1)
and training examples, and to filter training sets (Dimension 2).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

__all__ = [
    "PromptTemplate",
    "escape_description",
    "unescape_description",
    "PROMPTS",
    "DEFAULT_PROMPT",
    "ALTERNATIVE_PROMPTS",
    "get_prompt",
    "EXPLANATION_PROMPTS",
    "GENERATION_PROMPTS",
    "FILTER_PROMPTS",
]


@dataclass(frozen=True)
class PromptTemplate:
    """A named matching prompt.

    ``forced`` prompts instruct the model to answer exactly Yes/No;
    free prompts leave the answer format open (which matters for parsing
    zero-shot responses of less disciplined models).
    """

    name: str
    question: str
    forced: bool

    def render(self, left: str, right: str) -> str:
        """Full prompt text for one candidate pair.

        Descriptions are escaped (:func:`escape_description`) so the
        ``Entity 1: / Entity 2:`` block is unambiguous and the round trip
        through :func:`repro.prompts.builder.extract_entities` is exact —
        the chat path and the vectorized path key all behaviour on the
        description strings, so rendering must be losslessly invertible
        (checked by the ``prompt-roundtrip`` lint rule).
        """
        return (
            f'"{self.question}"\n'
            f"Entity 1: {escape_description(left)}\n"
            f"Entity 2: {escape_description(right)}"
        )


_UNESCAPE_RE = re.compile(r"\\(n|\\)")


def escape_description(text: str) -> str:
    """Make a description newline-free for embedding in a prompt block.

    Plain text (no backslashes or newlines — every built-in dataset
    serialization) renders unchanged; otherwise backslashes double and
    newlines become the two characters ``\\n``, keeping the mapping
    injective.
    """
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def unescape_description(text: str) -> str:
    """Exact inverse of :func:`escape_description` (single left-to-right pass)."""
    return _UNESCAPE_RE.sub(
        lambda m: "\n" if m.group(1) == "n" else "\\", text
    )


DEFAULT_PROMPT = PromptTemplate(
    name="default",
    question="Do the two entity descriptions refer to the same real-world product?",
    forced=False,
)

SIMPLE_FREE = PromptTemplate(
    name="simple-free",
    question="Do the two product descriptions match?",
    forced=False,
)

COMPLEX_FORCE = PromptTemplate(
    name="complex-force",
    question=(
        "Do the two product descriptions refer to the same real-world "
        "product? Answer with 'Yes' if they do and 'No' if they do not."
    ),
    forced=True,
)

SIMPLE_FORCE = PromptTemplate(
    name="simple-force",
    question=(
        "Do the two product descriptions match? Answer with 'Yes' if they "
        "do and 'No' if they do not."
    ),
    forced=True,
)

PROMPTS: dict[str, PromptTemplate] = {
    p.name: p for p in (DEFAULT_PROMPT, SIMPLE_FREE, COMPLEX_FORCE, SIMPLE_FORCE)
}

#: The three prompts used to probe sensitivity of models fine-tuned with
#: the default prompt (§3.3).
ALTERNATIVE_PROMPTS = (SIMPLE_FREE, COMPLEX_FORCE, SIMPLE_FORCE)


def get_prompt(name: str) -> PromptTemplate:
    """Look up a matching prompt by name."""
    try:
        return PROMPTS[name]
    except KeyError:
        raise ValueError(
            f"unknown prompt {name!r}; valid: {', '.join(PROMPTS)}"
        ) from None


#: Instruction prompts for explanation generation (Dimension 1).  The texts
#: paraphrase the repository prompts the paper references.
EXPLANATION_PROMPTS = {
    "long-textual": (
        "You labelled the pair above as {label}. Explain in detail why the "
        "two entity descriptions do or do not refer to the same real-world "
        "entity."
    ),
    "wadhwa": (
        "Explain concisely why the two entity descriptions {verb} the same "
        "real-world entity, following the style of the short example "
        "explanations provided."
    ),
    "structured": (
        "Explain the matching decision in a structured format. For each "
        "attribute used in the decision output: attribute=<name> "
        "importance=<0..1> values=<value 1>###<value 2> similarity=<0..1>."
    ),
    "no-importance": (
        "Explain the matching decision in a structured format. For each "
        "attribute used in the decision output: attribute=<name> "
        "values=<value 1>###<value 2> similarity=<0..1>."
    ),
    "no-imp-sim": (
        "List the attributes used for the matching decision in a structured "
        "format: attribute=<name> values=<value 1>###<value 2>."
    ),
}

#: Instruction prompts for example generation (§5.2).
GENERATION_PROMPTS = {
    "brief": (
        "Generate three non-matching and one matching product pair similar "
        "to the seed pair below."
    ),
    "detailed": (
        "You are an expert in entity matching: deciding whether two entity "
        "descriptions refer to the same real-world entity. Corner cases are "
        "matching pairs with dissimilar surface forms or non-matching pairs "
        "with very similar surface forms. Generate three non-matching and "
        "one matching product pair from the same product category as the "
        "seed pair, preserving its matching challenges, including corner "
        "cases."
    ),
    "demonstration": (
        "You are an expert in entity matching. Using the six demonstration "
        "pairs and the seed pair below, generate three non-matching and one "
        "matching product pair from the same product category with similar "
        "matching challenges."
    ),
}

#: Instruction prompts for training-set filtration (§5.1).
FILTER_PROMPTS = {
    "error-based": COMPLEX_FORCE.question,
    "relevancy": (
        "From the training examples below, select only the interesting "
        "ones."
    ),
}
