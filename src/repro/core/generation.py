"""Dimension 2b: LLM-based training-example generation (paper §5.2).

Three generation methods, all iterating over a seed training set and asking
the generator model (GPT-4o in the paper) for **three non-matches and one
match** per seed:

* ``brief`` — short task description.  Reproduces the paper's inspection
  findings: generated matches have too-similar strings (easy positives) and
  correctness is shaky (easy non-matches mislabeled as matches).
* ``detailed`` — task background plus corner-case instructions: same
  category as the seed, more variation, mixed correctness.
* ``demonstration`` — additionally conditions on the six seed pairs nearest
  in the embedding space; the most variance, still imperfect labels.

The quality profiles below encode exactly those observations; downstream,
error-based and relevancy filtering (``repro.core.selection``) recover
usable training data from the mixed-quality pool, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import derive_rng
from repro.datasets.build import HardnessProfile, build_split
from repro.datasets.catalog import ProductCatalog, SoftwareCatalog, PRODUCT_CATEGORIES
from repro.datasets.products import _mixed_renderer
from repro.datasets.schema import EntityPair, Split
from repro.llm.embeddings import EmbeddingModel

__all__ = [
    "GENERATION_METHODS",
    "GenerationProfile",
    "PROFILES",
    "generate_examples",
    "inspection_report",
]

GENERATION_METHODS = ("brief", "detailed", "demonstration")


@dataclass(frozen=True)
class GenerationProfile:
    """Quality profile of one generation method (from manual inspection)."""

    #: rendering-noise range for generated matches (low = too-similar strings)
    match_noise: tuple[float, float]
    #: fraction of generated non-matches that are corner cases (siblings)
    corner_neg_rate: float
    #: probability a generated "match" is actually two different entities
    label_error_match: float
    #: probability a generated "non-match" is actually the same entity
    label_error_nonmatch: float
    #: probability of drifting away from the seed's product category
    category_drift: float


PROFILES: dict[str, GenerationProfile] = {
    "brief": GenerationProfile(
        match_noise=(0.05, 0.25),
        corner_neg_rate=0.15,
        label_error_match=0.22,
        label_error_nonmatch=0.02,
        category_drift=0.5,
    ),
    "detailed": GenerationProfile(
        match_noise=(0.2, 0.7),
        corner_neg_rate=0.55,
        label_error_match=0.12,
        label_error_nonmatch=0.03,
        category_drift=0.15,
    ),
    "demonstration": GenerationProfile(
        match_noise=(0.1, 0.9),
        corner_neg_rate=0.6,
        label_error_match=0.15,
        label_error_nonmatch=0.04,
        category_drift=0.25,
    ),
}


def _seed_category(pair: EntityPair) -> str | None:
    """Product category of a seed pair, if its records expose one."""
    for record in (pair.left, pair.right):
        category = record.attributes.get("category")
        if category:
            return str(category)
    if "vendor" in pair.left.attributes or "vendor" in pair.right.attributes:
        return "software"
    return None


def _generate_for_seed(
    seed: EntityPair,
    method: str,
    index: int,
    generator: str,
    seed_value: int,
) -> list[EntityPair]:
    """One match + three non-matches derived from one seed pair."""
    profile = PROFILES[method]
    rng = derive_rng(seed_value, "generate", generator, method, seed.pair_id)
    category = _seed_category(seed)
    if category is None or rng.random() < profile.category_drift:
        category = str(rng.choice(list(PRODUCT_CATEGORIES) + ["software"]))

    if category == "software":
        catalog = SoftwareCatalog(
            int(derive_rng(seed_value, "gen-cat", method, index).integers(1, 2**31))
        )
    else:
        catalog = ProductCatalog(
            int(derive_rng(seed_value, "gen-cat", method, index).integers(1, 2**31)),
            categories=[category],
        )
    render = _mixed_renderer()
    out: list[EntityPair] = []

    # one generated match
    entity = catalog.sample()
    noise = float(rng.uniform(*profile.match_noise))
    mislabeled = rng.random() < profile.label_error_match
    other = catalog.sibling(entity, 0) if mislabeled else entity
    out.append(
        EntityPair(
            pair_id=f"gen-{method}-{index}-m",
            left=render(entity, rng, noise * 0.5, view="a"),
            right=render(other, rng, noise, view="b"),
            label=True,
            corner_case=noise > 0.5,
            source=f"generated:{method}" + (":mislabeled" if mislabeled else ""),
        )
    )

    # three generated non-matches
    for j in range(3):
        entity = catalog.sample()
        mislabeled = rng.random() < profile.label_error_nonmatch
        if mislabeled:
            other = entity
        elif rng.random() < profile.corner_neg_rate:
            other = catalog.sibling(entity, j)
        else:
            other = catalog.sample()
        out.append(
            EntityPair(
                pair_id=f"gen-{method}-{index}-n{j}",
                left=render(entity, rng, 0.3, view="a"),
                right=render(other, rng, 0.3, view="b"),
                label=False,
                corner_case=other.entity_id.startswith(entity.entity_id),
                source=f"generated:{method}" + (":mislabeled" if mislabeled else ""),
            )
        )
    return out


def generate_examples(
    seeds: Split,
    methods: tuple[str, ...] = GENERATION_METHODS,
    generator: str = "gpt-4o",
    seed: int = 71,
    embedding: EmbeddingModel | None = None,
) -> list[EntityPair]:
    """Generate synthetic training pairs from every seed in *seeds*.

    The demonstration method selects the six most similar seed pairs in the
    embedding space as in-prompt demonstrations; their categories broaden
    the category distribution of that method's output.
    """
    unknown = [m for m in methods if m not in GENERATION_METHODS]
    if unknown:
        raise ValueError(f"unknown generation methods: {unknown}")
    generated: list[EntityPair] = []
    demo_corpus = None
    if "demonstration" in methods:
        embedding = embedding or EmbeddingModel()
        texts = [p.left.description for p in seeds.pairs]
        demo_corpus = embedding.embed_many(texts)
    for index, pair in enumerate(seeds.pairs):
        for method in methods:
            if method == "demonstration" and demo_corpus is not None:
                # The demonstrations anchor the generation; the seed used for
                # category conditioning becomes the most similar *other* seed
                # half of the time, broadening category coverage.
                query = embedding.embed(pair.left.description)
                neighbours = embedding.nearest(query, demo_corpus, k=7)
                neighbours = [i for i in neighbours if i != index][:6]
                rng = derive_rng(seed, "demo-pick", pair.pair_id)
                if neighbours and rng.random() < 0.5:
                    pair_for_category = seeds.pairs[neighbours[0]]
                else:
                    pair_for_category = pair
                generated.extend(
                    _generate_for_seed(pair_for_category, method, index, generator, seed)
                )
            else:
                generated.extend(
                    _generate_for_seed(pair, method, index, generator, seed)
                )
    return generated


def inspection_report(pairs: list[EntityPair]) -> dict[str, dict[str, float]]:
    """Manual-inspection summary per generation method (paper §5.2).

    Returns, per method: number generated, positive rate, corner-case rate
    and the true mislabeling rate (known here because the generator is
    simulated; the paper estimated it by manual inspection).
    """
    report: dict[str, dict[str, float]] = {}
    for method in GENERATION_METHODS:
        subset = [p for p in pairs if p.source.startswith(f"generated:{method}")]
        if not subset:
            continue
        report[method] = {
            "count": len(subset),
            "positive_rate": sum(p.label for p in subset) / len(subset),
            "corner_rate": sum(p.corner_case for p in subset) / len(subset),
            "mislabeled_rate": sum(
                p.source.endswith(":mislabeled") for p in subset
            ) / len(subset),
        }
    return report
