"""Transfer-gain computation (paper §3.2).

    Transfer Gain = avg performance gain on target datasets
                  / avg gain of models fine-tuned directly on those targets

Gains are measured against each model's zero-shot baseline on the target
dataset.  The source dataset itself is excluded from the targets.
"""

from __future__ import annotations

__all__ = ["transfer_gain", "domain_targets"]

from repro.datasets.registry import PRODUCT_DATASETS, SCHOLAR_DATASETS


def domain_targets(domain: str, exclude: str | None = None) -> list[str]:
    """The evaluation datasets of a topical domain, minus the source set.

    WDC size variants share the WDC test set, so any ``wdc-*`` source
    excludes the WDC target.
    """
    pool = PRODUCT_DATASETS if domain == "product" else SCHOLAR_DATASETS
    targets = list(pool)
    if exclude is not None:
        if exclude.startswith("wdc"):
            targets = [t for t in targets if not t.startswith("wdc")]
        else:
            targets = [t for t in targets if t != exclude]
    return targets


def transfer_gain(
    model_f1: dict[str, float],
    zero_shot_f1: dict[str, float],
    specialized_f1: dict[str, float],
    targets: list[str],
) -> float | None:
    """The paper's transfer-gain ratio over *targets*.

    Parameters map dataset name → F1: the transferred model's scores, the
    zero-shot baseline, and the dataset-specialized fine-tuned models.
    Returns None when the specialized models show no average gain (the
    ratio is undefined) or when *targets* is empty.
    """
    if not targets:
        return None
    model_gain = sum(model_f1[t] - zero_shot_f1[t] for t in targets) / len(targets)
    specialized_gain = sum(
        specialized_f1[t] - zero_shot_f1[t] for t in targets
    ) / len(targets)
    if abs(specialized_gain) < 1e-9:
        return None
    return model_gain / specialized_gain
