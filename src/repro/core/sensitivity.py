"""Prompt-sensitivity study (paper §3.3).

Sensitivity of a model on a test set is the standard deviation of its F1
across the fine-tuning prompt and the three alternative query prompts.
The paper's finding — fine-tuning sharply reduces prompt sensitivity — is
emergent here: zero-shot scores cluster near the decision boundary where
per-prompt bias shifts flip many decisions, while a trained adapter's
logits dominate the bias term.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import pstdev

from repro.datasets.registry import load_dataset
from repro.eval.evaluator import evaluate_model
from repro.llm.model import ChatModel
from repro.prompts.templates import ALTERNATIVE_PROMPTS, DEFAULT_PROMPT

__all__ = ["PromptSensitivity", "prompt_sensitivity"]

_ALL_PROMPTS = (DEFAULT_PROMPT,) + ALTERNATIVE_PROMPTS


@dataclass(frozen=True)
class PromptSensitivity:
    """F1 per prompt plus the summary statistics the paper reports."""

    model_name: str
    training_set: str
    dataset: str
    f1_by_prompt: dict[str, float]

    @property
    def std(self) -> float:
        """Population standard deviation across the four prompts."""
        return pstdev(self.f1_by_prompt.values())

    @property
    def best_prompt(self) -> str:
        return max(self.f1_by_prompt, key=self.f1_by_prompt.get)

    @property
    def finetuning_prompt_is_best(self) -> bool:
        """Whether the prompt used for fine-tuning also queries best."""
        return self.best_prompt == DEFAULT_PROMPT.name


def prompt_sensitivity(model: ChatModel, dataset_name: str) -> PromptSensitivity:
    """Evaluate *model* under all four prompts on one test set."""
    test = load_dataset(dataset_name).test
    f1s = {
        template.name: evaluate_model(model, test, template).f1
        for template in _ALL_PROMPTS
    }
    return PromptSensitivity(
        model_name=model.name,
        training_set=model.training_set,
        dataset=dataset_name,
        f1_by_prompt=f1s,
    )
