"""The paper's contribution: the TailorMatch fine-tuning pipeline.

Dimension 1 (example representation) lives in
:mod:`repro.core.explanations`; Dimension 2 (example selection and
generation) in :mod:`repro.core.selection`, :mod:`repro.core.generation`
and :mod:`repro.core.error_selection`.  :mod:`repro.core.finetuning`
orchestrates the experiment grids, :mod:`repro.core.transfer` computes
transfer gains, :mod:`repro.core.sensitivity` the prompt-sensitivity study,
and :mod:`repro.core.pipeline` exposes the high-level TailorMatch facade.
"""

from repro.core.explanations import ExplanationGenerator, Explanation
from repro.core.finetuning import (
    FineTuneOutcome,
    evaluate_on,
    finetune_model,
    make_training_examples,
    zero_shot_model,
)
from repro.core.pipeline import TailorMatch
from repro.core.transfer import transfer_gain

__all__ = [
    "Explanation",
    "ExplanationGenerator",
    "FineTuneOutcome",
    "TailorMatch",
    "evaluate_on",
    "finetune_model",
    "make_training_examples",
    "transfer_gain",
    "zero_shot_model",
]
