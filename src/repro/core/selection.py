"""Dimension 2a: training-set filtration (paper §5.1).

* **Error-based filtering** — GPT-4o-mini labels every training pair with
  the *complex-force* prompt; pairs whose prediction disagrees with the
  annotation are discarded.  This removes genuinely mislabeled web data
  (plus some hard-but-correct examples), which is why it helps Llama-8B —
  and why fine-tuning GPT-4o-mini on a set filtered by *its own* errors
  backfires: exactly the examples it needs to learn from are gone.
* **Relevancy-based filtering** — GPT-4o keeps only "interesting" pairs;
  empirically the model interprets interesting as highly similar pairs
  (corner cases), so we implement the judgement as a similarity threshold
  on the filter model's reading of the pair.
"""

from __future__ import annotations

from repro.datasets.schema import Split
from repro.llm.features import featurize_texts
from repro.llm.model import ChatModel, build_model
from repro.prompts.templates import COMPLEX_FORCE, PromptTemplate

__all__ = ["error_based_filter", "relevancy_filter"]


def error_based_filter(
    split: Split,
    filter_model: ChatModel | str = "gpt-4o-mini",
    template: PromptTemplate = COMPLEX_FORCE,
    name: str | None = None,
) -> Split:
    """Keep only pairs the filter model labels consistently with the data.

    Mirrors the paper: the model is prompted with the *complex-force*
    prompt; examples whose model label differs from the annotation are
    dropped.
    """
    if isinstance(filter_model, str):
        filter_model = build_model(filter_model)
    predictions = filter_model.predict_pairs(split.pairs, template)
    keep = [bool(pred) == pair.label for pred, pair in zip(predictions, split.pairs)]
    return split.filtered(keep, name=name or f"{split.name}-filtered")


def relevancy_filter(
    split: Split,
    filter_model: ChatModel | str = "gpt-4o",
    match_threshold: float = 0.45,
    nonmatch_threshold: float = 0.80,
    name: str | None = None,
) -> Split:
    """Keep only "interesting" pairs, as judged by the filter model.

    The paper leaves "interesting" undefined and observes that GPT-4o
    selects highly similar pairs (corner cases), keeping most matches but
    only a small fraction of the non-matches.  We reproduce that emergent
    judgement: labelled matches are interesting unless trivially dissimilar;
    labelled non-matches are interesting only when their surface similarity
    is high enough to make them genuine corner cases (a hard drive vs. a TV
    offers little training value).
    """
    if isinstance(filter_model, str):
        filter_model = build_model(filter_model)
    from repro.llm.features import FEATURE_NAMES

    sim_index = FEATURE_NAMES.index("char3_cosine")
    keep = []
    for pair in split.pairs:
        phi = featurize_texts(pair.left.description, pair.right.description)
        similarity = phi[sim_index]
        threshold = match_threshold if pair.label else nonmatch_threshold
        keep.append(similarity >= threshold)
    return split.filtered(keep, name=name or f"{split.name}-filtered-rel")
