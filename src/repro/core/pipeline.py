"""TailorMatch: the high-level facade over the whole pipeline (Figure 1).

One object ties together zero-shot matching, fine-tuning with every
example-representation and example-selection strategy from the paper, and
evaluation — the API a downstream user programs against:

    >>> tm = TailorMatch("llama-3.1-8b")
    >>> tuned = tm.fine_tune("wdc-small", explanations="structured")
    >>> tm.evaluate(tuned, "abt-buy").f1  # doctest: +SKIP
"""

from __future__ import annotations

from repro.core.error_selection import error_based_selection
from repro.core.finetuning import (
    FineTuneOutcome,
    finetune_model,
    make_training_examples,
)
from repro.core.generation import GENERATION_METHODS, generate_examples
from repro.core.selection import error_based_filter, relevancy_filter
from repro.datasets.registry import load_dataset
from repro.datasets.schema import Split
from repro.eval.evaluator import EvaluationResult, evaluate_model
from repro.llm.model import ChatModel, build_model
from repro.prompts.templates import DEFAULT_PROMPT, PromptTemplate, get_prompt

__all__ = ["TailorMatch"]


class TailorMatch:
    """Fine-tuning LLMs for entity matching, end to end."""

    def __init__(self, model: str = "llama-3.1-8b") -> None:
        self.model_name = model
        self._zero_shot = build_model(model)

    # ------------------------------------------------------------ matching

    @property
    def zero_shot(self) -> ChatModel:
        """The model without any fine-tuning."""
        return self._zero_shot

    def match(
        self,
        left: str,
        right: str,
        model: ChatModel | None = None,
        prompt: str = "default",
    ) -> bool:
        """Match one pair of entity descriptions through the chat interface."""
        from repro.llm.parsing import parse_yes_no

        template = get_prompt(prompt)
        chat = model or self._zero_shot
        response = chat.complete(template.render(left, right))
        return bool(parse_yes_no(response))

    def evaluate(
        self,
        model: ChatModel | None,
        dataset: str,
        prompt: str = "default",
    ) -> EvaluationResult:
        """F1/precision/recall of a model on a benchmark test set."""
        template = get_prompt(prompt)
        chat = model or self._zero_shot
        return evaluate_model(chat, load_dataset(dataset).test, template)

    def match_all(
        self,
        dataset,
        model: ChatModel | None = None,
        prompt: str = "default",
        engine=None,
        batch_size: int = 32,
    ):
        """Match a whole workload through the online engine.

        *dataset* may be a registered dataset name (its test split is
        matched), a :class:`~repro.datasets.schema.Split`, a
        :class:`~repro.blocking.base.BlockingResult` candidate stream, or
        any sequence of ``EntityPair`` / ``(left, right)`` tuples.  Returns
        the list of :class:`~repro.engine.MatchResult`; pass your own
        *engine* to keep its cache and stats across calls (its stats are
        also reachable as ``engine.stats`` afterwards).
        """
        from repro.blocking.base import BlockingResult
        from repro.engine import MatchingEngine

        if engine is None:
            engine = MatchingEngine.for_model(
                model or self._zero_shot,
                template=get_prompt(prompt),
                batch_size=batch_size,
            )
        if isinstance(dataset, str):
            workload = load_dataset(dataset).test.pairs
        elif isinstance(dataset, Split):
            workload = dataset.pairs
        elif isinstance(dataset, BlockingResult):
            return engine.match_blocking(dataset)
        else:
            workload = dataset
        return engine.match_pairs(workload)

    # --------------------------------------------------------- fine-tuning

    def fine_tune(
        self,
        dataset: str,
        explanations: str | None = None,
        selection: str | None = None,
        generation: bool = False,
        prompt: str = "default",
    ) -> ChatModel:
        """Fine-tune with any combination of the paper's strategies.

        Parameters
        ----------
        dataset:
            Source training set ("wdc-small", "abt-buy", ...).
        explanations:
            Dimension 1 style (None, "long-textual", "wadhwa",
            "structured", "no-importance", "no-imp-sim").
        selection:
            Dimension 2a (None, "error-filter", "relevancy-filter",
            "error-filter+relevancy").
        generation:
            Dimension 2b: augment the training set with generated examples
            (combined with the selected filters, as in the paper).
        """
        source = load_dataset(dataset)
        train: Split = source.train
        tag = dataset

        if generation:
            generated = generate_examples(train, methods=GENERATION_METHODS)
            train = train.extended(generated, name=f"{train.name}+syn")
            tag += "+syn"

        if selection in ("error-filter", "error-filter+relevancy"):
            train = error_based_filter(train)
            tag += "-filter"
        if selection in ("relevancy-filter", "error-filter+relevancy"):
            train = relevancy_filter(train)
            tag += "-rel"
        if selection not in (
            None,
            "error-filter",
            "relevancy-filter",
            "error-filter+relevancy",
        ):
            raise ValueError(f"unknown selection strategy {selection!r}")

        outcome: FineTuneOutcome = finetune_model(
            self.model_name,
            train,
            valid=source.valid,
            explanation_style=explanations,
            template=get_prompt(prompt),
            tag=tag,
        )
        return outcome.model

    def fine_tune_error_selection(self, rounds: int = 5) -> ChatModel:
        """Dimension 2c: the iterative error-based selection loop."""
        return error_based_selection(self.model_name, rounds=rounds).model

    # ----------------------------------------------------------- utilities

    def training_examples(self, dataset: str, explanations: str | None = None):
        """Expose the exact fine-tuning examples (for inspection/tests)."""
        return make_training_examples(load_dataset(dataset).train, explanations)
