"""Dimension 2c: iterative error-based example selection (paper §5.3).

The loop:

1. Fine-tune on the 2,500 WDC-small examples.
2. Validate; collect the validation pairs the model still gets wrong.
3. From the large WDC pool (simulating extra labelling capacity), select
   the 2,500 pairs nearest to those errors in the embedding space.
4. Re-train on 2,500 seed + 2,500 selected examples for 5 epochs.
5. Repeat five times; keep the round with the best validation F1.

Only run for the Llama series in the paper (OpenAI's API does not allow
this kind of loop economically).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.finetuning import make_training_examples
from repro.datasets.registry import load_dataset
from repro.datasets.schema import Split
from repro.eval.evaluator import evaluate_model
from repro.llm.embeddings import EmbeddingModel
from repro.llm.model import ChatModel, build_model
from repro.prompts.templates import DEFAULT_PROMPT
from repro.training.config import defaults_for

__all__ = ["ErrorSelectionResult", "error_based_selection"]


@dataclass
class ErrorSelectionResult:
    """Outcome of the iterative loop."""

    model: ChatModel
    best_round: int
    round_valid_f1: list[float] = field(default_factory=list)
    #: how many validation errors remained after each round
    round_errors: list[int] = field(default_factory=list)


def _pair_text(pair) -> str:
    return f"{pair.left.description} ### {pair.right.description}"


def error_based_selection(
    model_name: str = "llama-3.1-8b",
    seed_dataset: str = "wdc-small",
    pool_dataset: str = "wdc-large",
    rounds: int = 5,
    extra_per_round: int = 2500,
    epochs_per_round: int = 5,
    embedding: EmbeddingModel | None = None,
) -> ErrorSelectionResult:
    """Run the error-based selection loop and return the best model."""
    persona = build_model(model_name).persona
    if persona.kind != "open-source":
        raise ValueError(
            "error-based selection requires a locally trainable model "
            "(OpenAI fine-tuning limitations, see paper §5.3)"
        )

    seed_ds = load_dataset(seed_dataset)
    pool = load_dataset(pool_dataset).train
    embedding = embedding or EmbeddingModel()
    pool_vectors = embedding.embed_many([_pair_text(p) for p in pool.pairs])

    base = build_model(model_name)
    config = defaults_for(persona.kind).with_epochs(epochs_per_round)
    seed_examples = make_training_examples(seed_ds.train)

    best_f1 = -1.0
    best_model: ChatModel | None = None
    best_round = 0
    round_f1s: list[float] = []
    round_errors: list[int] = []
    extra_pairs: list = []

    for round_no in range(1, rounds + 1):
        extra_examples = make_training_examples(
            Split(name="err-sel-extra", pairs=extra_pairs)
        )
        tuned, _ = base.fine_tune(
            seed_examples + extra_examples,
            valid=seed_ds.valid,
            template=DEFAULT_PROMPT,
            config=config,
            training_set=f"{seed_dataset}-err-sel-r{round_no}",
        )
        valid_eval = evaluate_model(tuned, seed_ds.valid)
        round_f1s.append(valid_eval.f1)
        if valid_eval.f1 > best_f1:
            best_f1 = valid_eval.f1
            best_model = tuned
            best_round = round_no

        # collect remaining validation errors
        predictions = tuned.predict_pairs(seed_ds.valid.pairs)
        errors = [
            pair
            for pair, pred in zip(seed_ds.valid.pairs, predictions)
            if bool(pred) != pair.label
        ]
        round_errors.append(len(errors))
        if not errors or round_no == rounds:
            continue

        # select pool pairs nearest to the error centroid(s)
        error_vectors = embedding.embed_many([_pair_text(p) for p in errors])
        scores = pool_vectors @ error_vectors.T  # (pool × errors)
        affinity = scores.max(axis=1)
        ranked = np.argsort(-affinity)[:extra_per_round]
        extra_pairs = [pool.pairs[int(i)] for i in ranked]

    assert best_model is not None
    return ErrorSelectionResult(
        model=best_model,
        best_round=best_round,
        round_valid_f1=round_f1s,
        round_errors=round_errors,
    )
