"""Standard fine-tuning orchestration (paper §3).

Helpers shared by every experiment: building training examples (optionally
explanation-augmented), fine-tuning a persona on a named training set, and
evaluating models over the benchmark test sets.  An in-process result cache
keeps the benchmark harness from re-running identical fine-tunes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.explanations import ExplanationGenerator
from repro.datasets.registry import load_dataset
from repro.datasets.schema import Split
from repro.eval.evaluator import EvaluationResult, evaluate_model
from repro.llm.model import ChatModel, build_model
from repro.prompts.templates import DEFAULT_PROMPT, PromptTemplate
from repro.training.config import FineTuneConfig
from repro.training.trainer import TrainingExample

__all__ = [
    "FineTuneOutcome",
    "combine_training_sets",
    "evaluate_on",
    "finetune_model",
    "make_training_examples",
    "zero_shot_model",
]


def zero_shot_model(model_name: str) -> ChatModel:
    """The zero-shot model for a persona (cached)."""
    return build_model(model_name)


def combine_training_sets(names: list[str], tag: str | None = None) -> Split:
    """Concatenate the training splits of several benchmarks.

    The paper's future-work direction for the cross-domain problem: train
    on a mixture of topical domains so neither is unrehearsed during
    fine-tuning (see ``benchmarks/bench_extension_mixed_domain.py``).
    """
    if not names:
        raise ValueError("need at least one training set")
    pairs = []
    for name in names:
        pairs.extend(load_dataset(name).train.pairs)
    return Split(name=tag or "+".join(names), pairs=pairs)


def make_training_examples(
    split: Split,
    explanation_style: str | None = None,
    generator: str = "gpt-4o-mini",
) -> list[TrainingExample]:
    """Turn a training split into fine-tuning examples.

    With an ``explanation_style``, every example is augmented with a
    generated explanation whose auxiliary targets drive the Dimension-1
    multi-task loss.
    """
    if explanation_style is None:
        return [TrainingExample(pair=p, label=p.label) for p in split.pairs]
    explainer = ExplanationGenerator(generator=generator)
    examples = []
    for pair in split.pairs:
        explanation = explainer.explain(pair, explanation_style)
        examples.append(
            TrainingExample(pair=pair, label=pair.label, aux=explanation.aux_targets)
        )
    return examples


@dataclass
class FineTuneOutcome:
    """A fine-tuned model plus its training diagnostics."""

    model: ChatModel
    best_epoch: int
    final_train_loss: float
    #: per-epoch validation F1 of the visible checkpoints
    valid_curve: list[float | None] = field(default_factory=list)


# In-process cache: (model, trainset-tag, style, prompt, epochs) → outcome.
_FT_CACHE: dict[tuple, FineTuneOutcome] = {}


def finetune_model(
    model_name: str,
    train: Split | str,
    valid: Split | str | None = None,
    explanation_style: str | None = None,
    template: PromptTemplate = DEFAULT_PROMPT,
    config: FineTuneConfig | None = None,
    tag: str | None = None,
    use_cache: bool = True,
) -> FineTuneOutcome:
    """Fine-tune *model_name* on *train* (a Split or a dataset name).

    When given dataset names, the dataset's own train/valid splits are used
    — the paper's per-dataset specialized models.  ``tag`` names the
    training set for reporting and caching (defaults to the split name).
    """
    if isinstance(train, str):
        dataset = load_dataset(train)
        train_split = dataset.train
        valid_split = dataset.valid if valid is None else valid
        tag = tag or train
    else:
        train_split = train
        valid_split = valid
        tag = tag or train_split.name
    if isinstance(valid_split, str):
        valid_split = load_dataset(valid_split).valid

    aux_weight = 1.0 if explanation_style else 0.0
    cache_key = (
        model_name,
        tag,
        explanation_style,
        template.name,
        config.epochs if config else None,
        config.seed if config else None,
        len(train_split),
    )
    if use_cache and cache_key in _FT_CACHE:
        return _FT_CACHE[cache_key]

    base = build_model(model_name)
    if config is None:
        from repro.training.config import defaults_for

        config = defaults_for(base.persona.kind)
    if explanation_style:
        config = config.with_aux_weight(aux_weight)

    examples = make_training_examples(train_split, explanation_style)
    tuned, result = base.fine_tune(
        examples,
        valid=valid_split,
        template=template,
        config=config,
        training_set=tag,
        explanation_style=explanation_style,
    )
    outcome = FineTuneOutcome(
        model=tuned,
        best_epoch=result.best_epoch,
        final_train_loss=result.final_train_loss,
        valid_curve=[c.valid_f1 for c in result.log.checkpoints],
    )
    if use_cache:
        _FT_CACHE[cache_key] = outcome
    return outcome


# Evaluation memo: (model identity, dataset, prompt) → result.  The model
# reference inside the value pins the object so ids cannot be recycled.
_EVAL_CACHE: dict[tuple[int, str, str], tuple[ChatModel, EvaluationResult]] = {}


def evaluate_on(
    model: ChatModel,
    dataset_names: list[str],
    template: PromptTemplate = DEFAULT_PROMPT,
) -> dict[str, EvaluationResult]:
    """Evaluate *model* on the test split of each named dataset (memoized)."""
    results: dict[str, EvaluationResult] = {}
    for name in dataset_names:
        key = (id(model), name, template.name)
        cached = _EVAL_CACHE.get(key)
        if cached is not None and cached[0] is model:
            results[name] = cached[1]
            continue
        result = evaluate_model(model, load_dataset(name).test, template)
        _EVAL_CACHE[key] = (model, result)
        results[name] = result
    return results


def clear_finetune_cache() -> None:
    """Drop all cached fine-tuning outcomes (mainly for tests)."""
    _FT_CACHE.clear()
    _EVAL_CACHE.clear()
