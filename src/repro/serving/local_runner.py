"""Local batched inference runner (the Transformers path of the paper).

Runs open-source models locally in micro-batches with deterministic
(temperature-0) decoding, mirroring how the paper drives the Llama models
through Hugging Face Transformers on multi-GPU machines.  The batch size
only controls chunking here, but the interface — and the determinism
guarantee across batch sizes, which real inference stacks famously violate
— is part of the library's contract and covered by tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.llm.model import ChatModel, build_model

__all__ = ["LocalRunner"]


@dataclass
class LocalRunner:
    """Batched prompt runner for locally hosted models."""

    model: ChatModel
    batch_size: int = 32

    @classmethod
    def for_model(cls, name: str, batch_size: int = 32) -> "LocalRunner":
        model = build_model(name)
        if model.persona.kind != "open-source":
            raise ValueError(f"{name} is a hosted model; use the batch API instead")
        return cls(model=model, batch_size=batch_size)

    def generate(self, prompts: list[str]) -> list[str]:
        """Answer every prompt, preserving order."""
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")
        outputs: list[str] = []
        for start in range(0, len(prompts), self.batch_size):
            chunk = prompts[start: start + self.batch_size]
            outputs.extend(self.model.complete(p) for p in chunk)
        return outputs
