"""Hosted fine-tuning API (simulated OpenAI fine-tuning endpoint).

Jobs take a training file (prompt/completion pairs), run with the
provider's default hyperparameters (learning-rate multiplier 1.8, batch
size 16) and expose **only the final checkpoint plus two intermediate
ones** — the limitation that restricts validation for the hosted models in
the paper (§2).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.datasets.schema import Split
from repro.llm.model import ChatModel, build_model
from repro.prompts.templates import DEFAULT_PROMPT, PromptTemplate
from repro.training.config import hosted_defaults
from repro.training.trainer import TrainingExample

__all__ = ["FineTuneJob", "FineTuneAPI"]

#: How many trailing checkpoints the provider exposes.
VISIBLE_CHECKPOINTS = 3


@dataclass
class FineTuneJob:
    """One hosted fine-tuning job."""

    job_id: str
    base_model: str
    status: str = "queued"
    fine_tuned_model: ChatModel | None = None
    #: (epoch, valid F1) for the visible checkpoints only
    visible_checkpoints: list[tuple[int, float | None]] = field(default_factory=list)
    error: str | None = None


class FineTuneAPI:
    """Simulated provider endpoint for fine-tuning hosted models."""

    def __init__(self) -> None:
        self._jobs: dict[str, FineTuneJob] = {}
        self._ids = itertools.count(1)

    def create(
        self,
        base_model: str,
        training_examples: list[TrainingExample],
        validation: Split | None = None,
        template: PromptTemplate = DEFAULT_PROMPT,
        suffix: str = "custom",
        seed: int | None = None,
    ) -> FineTuneJob:
        """Create a fine-tuning job (validated, then queued)."""
        job = FineTuneJob(job_id=f"ftjob-{next(self._ids)}", base_model=base_model)
        self._jobs[job.job_id] = job
        try:
            base = build_model(base_model)
        except ValueError as exc:
            job.status = "failed"
            job.error = str(exc)
            return job
        if base.persona.kind != "hosted":
            job.status = "failed"
            job.error = f"{base_model} is not available for hosted fine-tuning"
            return job
        if len(training_examples) < 10:
            job.status = "failed"
            job.error = "training file must contain at least 10 examples"
            return job

        config = hosted_defaults() if seed is None else hosted_defaults(seed)
        tuned, result = base.fine_tune(
            training_examples,
            valid=validation,
            template=template,
            config=config,
            training_set=suffix,
        )
        job.fine_tuned_model = tuned
        job.visible_checkpoints = [
            (c.epoch, c.valid_f1)
            for c in result.log.visible(VISIBLE_CHECKPOINTS)
        ]
        job.status = "succeeded"
        return job

    def retrieve(self, job_id: str) -> FineTuneJob:
        return self._jobs[job_id]
