"""OpenAI-style asynchronous batch API (simulated).

Requests are submitted as a batch, the job advances through the states
``validating → in_progress → completed``, and responses come back keyed by
``custom_id`` — the same shape as the real batch endpoint the paper used
for the hosted models.  Oversized batches are rejected at validation, and
malformed prompts produce per-request errors instead of failing the job.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.llm.model import ChatModel

__all__ = [
    "BatchRequest",
    "BatchResponse",
    "BatchJob",
    "BatchAPI",
    "UnknownJobError",
]

#: Maximum number of requests the endpoint accepts per batch (the real
#: endpoint caps at 50,000).
MAX_BATCH_SIZE = 50_000


class UnknownJobError(KeyError):
    """A job id the endpoint has never issued (or from another endpoint)."""

    def __init__(self, job_id: str) -> None:
        super().__init__(job_id)
        self.job_id = job_id

    def __str__(self) -> str:
        return f"unknown batch job {self.job_id!r}: this endpoint never issued it"


@dataclass(frozen=True)
class BatchRequest:
    """One chat completion request inside a batch."""

    custom_id: str
    prompt: str
    temperature: float = 0.0


@dataclass(frozen=True)
class BatchResponse:
    """The completion (or error) for one request."""

    custom_id: str
    content: str | None
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class BatchJob:
    """A submitted batch moving through the provider's state machine."""

    job_id: str
    model_name: str
    requests: list[BatchRequest]
    status: str = "validating"
    responses: list[BatchResponse] = field(default_factory=list)
    error: str | None = None

    @property
    def counts(self) -> dict[str, int]:
        done = len(self.responses)
        failed = sum(1 for r in self.responses if not r.ok)
        return {"total": len(self.requests), "completed": done, "failed": failed}


class BatchAPI:
    """Simulated provider endpoint for batched chat completions."""

    def __init__(self) -> None:
        self._jobs: dict[str, BatchJob] = {}
        self._models: dict[str, ChatModel] = {}
        self._ids = itertools.count(1)

    def register_model(self, model: ChatModel, name: str | None = None) -> str:
        """Make a model (zero-shot or fine-tuned) addressable by name."""
        name = name or f"{model.name}:{model.training_set}"
        self._models[name] = model
        return name

    def submit(self, model_name: str, requests: list[BatchRequest]) -> BatchJob:
        """Submit a batch; returns the job in ``validating`` state."""
        job = BatchJob(
            job_id=f"batch-{next(self._ids)}",
            model_name=model_name,
            requests=list(requests),
        )
        self._jobs[job.job_id] = job
        if model_name not in self._models:
            job.status = "failed"
            job.error = f"unknown model {model_name!r}"
        elif len(requests) > MAX_BATCH_SIZE:
            job.status = "failed"
            job.error = f"batch exceeds {MAX_BATCH_SIZE} requests"
        elif len({r.custom_id for r in requests}) != len(requests):
            job.status = "failed"
            job.error = "duplicate custom_id in batch"
        return job

    def _job(self, job_id: str) -> BatchJob:
        try:
            return self._jobs[job_id]
        except KeyError:
            raise UnknownJobError(job_id) from None

    def poll(self, job_id: str) -> BatchJob:
        """Advance the job one state and return it (validating→…→completed).

        Raises :class:`UnknownJobError` (never a bare ``KeyError``) for a
        job id this endpoint did not issue.
        """
        job = self._job(job_id)
        if job.status == "validating":
            job.status = "in_progress"
        elif job.status == "in_progress":
            self._execute(job)
            job.status = "completed"
        return job

    def run_to_completion(self, job_id: str) -> list[BatchResponse]:
        """Poll until terminal and return the responses.

        Raises :class:`UnknownJobError` for an id this endpoint never
        issued, and ``RuntimeError`` when the job ends in ``failed``.
        """
        job = self._job(job_id)
        while job.status not in ("completed", "failed"):
            job = self.poll(job_id)
        if job.status == "failed":
            raise RuntimeError(f"batch {job_id} failed: {job.error}")
        return job.responses

    def _execute(self, job: BatchJob) -> None:
        model = self._models[job.model_name]
        for request in job.requests:
            try:
                content = model.complete(request.prompt)
            except ValueError as exc:
                job.responses.append(
                    BatchResponse(
                        custom_id=request.custom_id, content=None, error=str(exc)
                    )
                )
            else:
                job.responses.append(
                    BatchResponse(custom_id=request.custom_id, content=content)
                )
