"""Serving substrate: the two inference/fine-tuning paths of the paper.

The paper prompts hosted models through the **OpenAI batch API** and local
models through **Hugging Face Transformers**; hosted fine-tuning goes
through a job-based API that only exposes the final checkpoint plus two
intermediate ones.  This package simulates those interfaces so experiment
code exercises the same control flow (job submission, polling, partial
checkpoint visibility) a user of the real systems would.
"""

from repro.serving.batch_api import BatchAPI, BatchJob, BatchRequest, BatchResponse
from repro.serving.finetune_api import FineTuneAPI, FineTuneJob
from repro.serving.local_runner import LocalRunner

__all__ = [
    "BatchAPI",
    "BatchJob",
    "BatchRequest",
    "BatchResponse",
    "FineTuneAPI",
    "FineTuneJob",
    "LocalRunner",
]
