"""Golden-record selection: one canonical record per entity cluster.

Attribute-level majority voting with deterministic tie-breaks: for each
attribute key, the most frequent non-empty value wins, ties going to the
lexicographically smallest value.  The golden description comes from the
cluster's *exemplar* — the member agreeing with the voted attributes on
the most keys (ties again broken deterministically, by record id) — so
the surface form shown downstream is always a real observed description,
never a synthesized one.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.datasets.schema import Record
from repro.resolve.clusterer import Clustering, ResolutionError

__all__ = ["golden_record", "golden_records"]


def _voted_attributes(records: Sequence[Record]) -> dict[str, str]:
    """Majority value per attribute key over the cluster's members."""
    counts: dict[str, dict[str, int]] = {}
    for record in records:
        for attr_key, value in record.attributes.items():
            if not value:
                continue
            by_value = counts.setdefault(attr_key, {})
            by_value[value] = by_value.get(value, 0) + 1
    voted: dict[str, str] = {}
    for attr_key in sorted(counts):
        by_value = counts[attr_key]
        # Most votes first; equal votes resolved by smallest value.
        winner = min(by_value, key=lambda v: (-by_value[v], v))
        voted[attr_key] = winner
    return voted


def golden_record(records: Sequence[Record], record_id: str | None = None) -> Record:
    """The canonical record for one cluster of duplicate records.

    ``record_id`` defaults to the smallest member id — the same id
    :class:`~repro.resolve.clusterer.Clustering` assigns the cluster, so
    golden records line up with cluster ids without extra bookkeeping.
    """
    if not records:
        raise ResolutionError("cannot build a golden record from no records")
    voted = _voted_attributes(records)

    def agreement(record: Record) -> int:
        return sum(
            1 for attr_key, value in voted.items()
            if record.attributes.get(attr_key) == value
        )

    exemplar = min(records, key=lambda r: (-agreement(r), r.record_id))
    return Record(
        record_id=record_id or min(r.record_id for r in records),
        attributes=voted,
        description=exemplar.description,
    )


def golden_records(
    clustering: Clustering, records: Mapping[str, Record]
) -> dict[str, Record]:
    """Cluster id → golden record for every cluster of *clustering*.

    *records* maps element ids (as used in the clustering) to their
    :class:`Record`; every clustered element must be present.
    """
    golden: dict[str, Record] = {}
    for cluster in clustering.clusters:
        members = []
        for element in cluster:
            record = records.get(element)
            if record is None:
                raise ResolutionError(
                    f"clustered element {element!r} has no record"
                )
            members.append(record)
        golden[cluster[0]] = golden_record(members, record_id=cluster[0])
    return golden
