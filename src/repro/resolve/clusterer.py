"""Pairwise decisions → entity clusters.

Two clustering modes over the same inputs (a set of elements plus a
stream of :class:`PairDecision` objects, typically produced from
:class:`~repro.engine.MatchResult` answers):

* :func:`transitive_closure` — the classic ER baseline: every positive
  decision is an edge, clusters are connected components.  The result is
  a pure function of the decision *set* (input order never matters).
* :func:`correlation_cluster` — greedy correlation clustering that uses
  the engine's confidence scores as evidence weights and vetoes merges
  whose cross-cluster agreement (positive weight over total weight)
  falls below ``min_agreement``.  One noisy "yes" can no longer glue two
  well-separated clusters together.

Both modes honour must-link / cannot-link constraints.  Must-links are
applied before any decision; a merge that would place a cannot-link pair
in one cluster is skipped.  Decisions are processed in a canonical sorted
order, so both functions are invariant to the order decisions arrive in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.resolve.uf import UnionFind

__all__ = [
    "Clustering",
    "PairDecision",
    "ResolutionError",
    "correlation_cluster",
    "transitive_closure",
]


class ResolutionError(ValueError):
    """Raised for contradictory constraints or malformed cluster inputs."""


def _canonical_pair(a: str, b: str) -> tuple[str, str]:
    """Unordered pair key (smaller element first)."""
    return (a, b) if a <= b else (b, a)


@dataclass(frozen=True)
class PairDecision:
    """One pairwise matching decision between two element ids.

    ``score`` is the decision's evidence weight in [0, 1] — engine
    answers carry 1.0, degraded fallback answers less (see
    :mod:`repro.resolve.pipeline`).  Only the correlation mode uses it;
    transitive closure treats every positive decision alike.
    """

    left: str
    right: str
    match: bool
    score: float = 1.0
    source: str = "engine"

    def __post_init__(self) -> None:
        if self.left == self.right:
            raise ResolutionError(
                f"self-pair decision for element {self.left!r}"
            )
        if not 0.0 <= self.score <= 1.0:
            raise ResolutionError(f"score {self.score} outside [0, 1]")

    @property
    def key(self) -> tuple[str, str]:
        """Canonical unordered pair (identity for aggregation).

        Cached per instance (the dataclass is frozen, so the pair can
        never change): bulk consumers — clustering, journal restore,
        sharded re-drain — hit this once per decision instead of
        recomputing the canonical ordering on every access.  Cached by
        hand in ``__dict__`` rather than via ``functools.cached_property``,
        whose per-descriptor lock (still present on Python 3.11) costs
        more than the computation it saves.
        """
        cached = self.__dict__.get("_key")
        if cached is None:
            cached = _canonical_pair(self.left, self.right)
            self.__dict__["_key"] = cached
        return cached

    @classmethod
    def trusted(
        cls, left: str, right: str, match: bool, score: float, source: str
    ) -> "PairDecision":
        """Construct without re-validation, for bulk snapshot restore.

        Snapshot documents are written by :meth:`ResolutionStore.snapshot`
        from decisions that already passed ``__post_init__``, and are
        version/kind-checked before any row is read — re-validating tens
        of thousands of rows on every recovery would dominate restore
        time for zero additional safety.
        """
        decision = object.__new__(cls)
        decision.__dict__.update(
            left=left, right=right, match=match, score=score, source=source
        )
        return decision


@dataclass(frozen=True)
class Clustering:
    """An entity partition: disjoint clusters of element ids.

    Canonical form — every cluster's members are sorted, clusters are
    sorted by their id (first member), and the id of a cluster is its
    lexicographically smallest member.  Two equal partitions therefore
    compare equal regardless of how they were built.
    """

    clusters: tuple[tuple[str, ...], ...]

    @classmethod
    def from_clusters(cls, clusters: Iterable[Iterable[str]]) -> "Clustering":
        """Canonicalize arbitrary member groups (must be disjoint)."""
        canonical = tuple(
            sorted(
                (tuple(sorted(members)) for members in clusters if members),
                key=lambda cluster: cluster[0],
            )
        )
        seen: set[str] = set()
        for cluster in canonical:
            for member in cluster:
                if member in seen:
                    raise ResolutionError(
                        f"element {member!r} appears in two clusters"
                    )
                seen.add(member)
        return cls(clusters=canonical)

    @classmethod
    def from_union_find(cls, uf: UnionFind) -> "Clustering":
        return cls(clusters=uf.components())

    @classmethod
    def from_assignments(cls, assignments: Mapping[str, str]) -> "Clustering":
        """Build from an element → cluster-label mapping."""
        groups: dict[str, list[str]] = {}
        for element, label in assignments.items():
            groups.setdefault(label, []).append(element)
        return cls.from_clusters(groups.values())

    # ------------------------------------------------------------- read-outs

    @property
    def elements(self) -> tuple[str, ...]:
        """All clustered elements, sorted."""
        return tuple(
            sorted(member for cluster in self.clusters for member in cluster)
        )

    def assignments(self) -> dict[str, str]:
        """Element → cluster id (the cluster's smallest member)."""
        return {
            member: cluster[0]
            for cluster in self.clusters
            for member in cluster
        }

    def cluster_of(self, element: str) -> tuple[str, ...]:
        for cluster in self.clusters:
            if element in cluster:
                return cluster
        raise KeyError(f"unknown element {element!r}")

    def size_histogram(self) -> dict[int, int]:
        """Cluster size → number of clusters of that size."""
        histogram: dict[int, int] = {}
        for cluster in self.clusters:
            histogram[len(cluster)] = histogram.get(len(cluster), 0) + 1
        return dict(sorted(histogram.items()))

    def __len__(self) -> int:
        return len(self.clusters)

    def __iter__(self):
        return iter(self.clusters)


# --------------------------------------------------------------- constraints


def _prepare(
    elements: Iterable[str],
    decisions: Sequence[PairDecision],
    must_link: Iterable[tuple[str, str]],
    cannot_link: Iterable[tuple[str, str]],
) -> tuple[UnionFind, tuple[tuple[str, str], ...]]:
    """Seed a union-find with elements + must-links; canonicalize cannot-links."""
    uf = UnionFind(elements)
    for decision in decisions:
        uf.add(decision.left)
        uf.add(decision.right)
    cannot = tuple(sorted({_canonical_pair(a, b) for a, b in cannot_link}))
    for a, b in cannot:
        uf.add(a)
        uf.add(b)
    for a, b in sorted({_canonical_pair(a, b) for a, b in must_link}):
        uf.union(a, b)
    for a, b in cannot:
        if uf.connected(a, b):
            raise ResolutionError(
                f"must-link constraints force cannot-link pair ({a!r}, {b!r}) "
                "into one cluster"
            )
    return uf, cannot


def _merge_allowed(
    uf: UnionFind, cannot: tuple[tuple[str, str], ...], a: str, b: str
) -> bool:
    """Would merging *a*'s and *b*'s components violate a cannot-link?"""
    id_a, id_b = uf.find(a), uf.find(b)
    for x, y in cannot:
        id_x, id_y = uf.find(x), uf.find(y)
        if (id_x == id_a and id_y == id_b) or (id_x == id_b and id_y == id_a):
            return False
    return True


# ----------------------------------------------------------------- clustering


def transitive_closure(
    elements: Iterable[str],
    decisions: Sequence[PairDecision],
    must_link: Iterable[tuple[str, str]] = (),
    cannot_link: Iterable[tuple[str, str]] = (),
) -> Clustering:
    """Connected components over the positive decisions.

    Without cannot-links the result is provably order-invariant: the
    partition is the connected components of the graph whose edge set is
    ``{d.key for d in decisions if d.match}``, and connected components
    are a function of the edge *set* only.  With cannot-links the greedy
    skip depends on processing order, so positive decisions are applied
    in canonical sorted order — still a pure function of the inputs.
    """
    uf, cannot = _prepare(elements, decisions, must_link, cannot_link)
    positive = sorted({d.key for d in decisions if d.match})
    for a, b in positive:
        if uf.connected(a, b):
            continue
        if _merge_allowed(uf, cannot, a, b):
            uf.union(a, b)
    return Clustering.from_union_find(uf)


def correlation_cluster(
    elements: Iterable[str],
    decisions: Sequence[PairDecision],
    must_link: Iterable[tuple[str, str]] = (),
    cannot_link: Iterable[tuple[str, str]] = (),
    min_agreement: float = 0.5,
) -> Clustering:
    """Greedy agreement-weighted clustering with low-agreement vetoes.

    Evidence is aggregated per unordered pair (repeated decisions sum).
    Candidate merges are visited in descending positive-weight order;
    a merge of clusters A and B happens only when

        pos(A, B) / (pos(A, B) + neg(A, B)) >= min_agreement

    where pos/neg sum the scores of positive/negative decisions crossing
    the two clusters.  ``min_agreement=0.5`` means "merge unless the
    negative evidence outweighs the positive"; 0.0 reduces to transitive
    closure over pairs with any positive evidence.
    """
    if not 0.0 <= min_agreement <= 1.0:
        raise ResolutionError(
            f"min_agreement {min_agreement} outside [0, 1]"
        )
    uf, cannot = _prepare(elements, decisions, must_link, cannot_link)
    #: canonical pair → [positive weight, negative weight].
    evidence: dict[tuple[str, str], list[float]] = {}
    for decision in decisions:
        weights = evidence.setdefault(decision.key, [0.0, 0.0])
        weights[0 if decision.match else 1] += decision.score

    #: component id → {other component id → [pos, neg]} cross evidence.
    cross: dict[str, dict[str, list[float]]] = {}
    for (a, b), (pos, neg) in evidence.items():
        id_a, id_b = uf.find(a), uf.find(b)
        if id_a == id_b:
            continue
        for src, dst in ((id_a, id_b), (id_b, id_a)):
            entry = cross.setdefault(src, {}).setdefault(dst, [0.0, 0.0])
            entry[0] += pos
            entry[1] += neg

    def merge_components(id_a: str, id_b: str) -> None:
        uf.union(id_a, id_b)
        merged = uf.find(id_a)
        absorbed = id_b if merged == id_a else id_a
        kept_map = cross.pop(merged, {})
        for other, weights in cross.pop(absorbed, {}).items():
            if other == merged:
                continue
            entry = kept_map.setdefault(other, [0.0, 0.0])
            entry[0] += weights[0]
            entry[1] += weights[1]
        kept_map.pop(absorbed, None)
        if kept_map:
            cross[merged] = kept_map
        for neighbours in cross.values():
            stale = neighbours.pop(absorbed, None)
            if stale is not None:
                entry = neighbours.setdefault(merged, [0.0, 0.0])
                entry[0] += stale[0]
                entry[1] += stale[1]

    candidates = sorted(
        (pair for pair, weights in evidence.items() if weights[0] > 0.0),
        key=lambda pair: (-evidence[pair][0], pair),
    )
    for a, b in candidates:
        id_a, id_b = uf.find(a), uf.find(b)
        if id_a == id_b:
            continue
        if not _merge_allowed(uf, cannot, a, b):
            continue
        pos, neg = cross.get(id_a, {}).get(id_b, (0.0, 0.0))
        total = pos + neg
        if total <= 0.0 or pos / total < min_agreement:
            continue
        merge_components(id_a, id_b)
    return Clustering.from_union_find(uf)
