"""Cluster-level evaluation: B³, Adjusted Rand Index, pairwise F1.

All three scores are computed from one contingency table between the
predicted and gold partitions, so they are exact (integer pair counts,
no sampling) and cheap even for thousands of records.  The pairwise
scores use the *same* arithmetic as :func:`repro.eval.metrics.f1_score`
— a cluster-level evaluation of a pairwise matcher's transitive closure
reconciles with the pairwise evaluation of the same matcher (tested on
enumerated pairs in ``tests/resolve/test_metrics.py``).

Conventions follow the existing evaluator: B³ and pairwise scores are
percentages; ARI keeps its native [-1, 1] scale.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.blocking.base import recall_at_k, recall_curve
from repro.eval.metrics import MatchingScores
from repro.resolve.clusterer import Clustering

__all__ = [
    "ClusterScores",
    "adjusted_rand_index",
    "b_cubed",
    "cluster_scores",
    "pairwise_scores",
    # Blocking-recall metrics, re-exported so resolution callers score
    # candidate generation and clustering through one module; the single
    # implementation lives in repro.blocking.base (shared by the
    # benchmark and the CLI --stats path).
    "recall_at_k",
    "recall_curve",
]


@dataclass(frozen=True)
class ClusterScores:
    """Cluster-level agreement between a predicted and a gold partition."""

    b3_precision: float
    b3_recall: float
    b3_f1: float
    ari: float
    pairwise: MatchingScores
    predicted_clusters: int
    gold_clusters: int
    records: int

    def as_dict(self) -> dict[str, object]:
        """JSON-serializable snapshot (used by the CLI and benchmarks)."""
        return {
            "records": self.records,
            "predicted_clusters": self.predicted_clusters,
            "gold_clusters": self.gold_clusters,
            "b3_precision": round(self.b3_precision, 2),
            "b3_recall": round(self.b3_recall, 2),
            "b3_f1": round(self.b3_f1, 2),
            "ari": round(self.ari, 4),
            "pairwise_precision": round(self.pairwise.precision, 2),
            "pairwise_recall": round(self.pairwise.recall, 2),
            "pairwise_f1": round(self.pairwise.f1, 2),
        }


def _contingency(
    predicted: Clustering, gold: Clustering
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Contingency matrix ``n[i, j]`` plus row/column marginals.

    Both partitions must cover exactly the same element set — a metric
    over mismatched universes would silently compare different problems.
    """
    predicted_elements = predicted.elements
    gold_elements = gold.elements
    if predicted_elements != gold_elements:
        missing = set(gold_elements) ^ set(predicted_elements)
        sample = ", ".join(repr(e) for e in sorted(missing)[:3])
        raise ValueError(
            f"predicted and gold clusterings cover different elements "
            f"({len(missing)} differ, e.g. {sample})"
        )
    gold_index = {
        member: j
        for j, cluster in enumerate(gold.clusters)
        for member in cluster
    }
    matrix = np.zeros((len(predicted.clusters), len(gold.clusters)), dtype=np.int64)
    for i, cluster in enumerate(predicted.clusters):
        for member in cluster:
            matrix[i, gold_index[member]] += 1
    return matrix, matrix.sum(axis=1), matrix.sum(axis=0)


def _pairs(counts: np.ndarray) -> np.ndarray:
    """Element-wise n-choose-2."""
    counts = counts.astype(np.int64)
    return counts * (counts - 1) // 2


def b_cubed(
    predicted: Clustering, gold: Clustering
) -> tuple[float, float, float]:
    """B³ precision / recall / F1 in percent.

    Per element e: precision(e) = |C(e) ∩ G(e)| / |C(e)| and recall(e) =
    |C(e) ∩ G(e)| / |G(e)|; scores average over elements.  From the
    contingency matrix: Σ_ij n_ij² / a_i (resp. / b_j), divided by n.
    """
    matrix, rows, cols = _contingency(predicted, gold)
    total = int(rows.sum())
    if total == 0:
        return 100.0, 100.0, 100.0
    squared = matrix.astype(np.float64) ** 2
    precision = 100.0 * float(
        (squared / rows[:, None]).sum()
    ) / total
    recall = 100.0 * float(
        (squared / cols[None, :]).sum()
    ) / total
    f1 = (
        2 * precision * recall / (precision + recall)
        if (precision + recall)
        else 0.0
    )
    return precision, recall, f1


def adjusted_rand_index(predicted: Clustering, gold: Clustering) -> float:
    """Hubert–Arabie ARI in [-1, 1] (1 = identical partitions).

    Degenerate cases where the expected index equals the maximum index
    (e.g. both partitions all-singletons, or ≤1 element) return 1.0 when
    the partitions agree perfectly and 0.0 otherwise, the standard
    convention.
    """
    matrix, rows, cols = _contingency(predicted, gold)
    total = int(rows.sum())
    if total < 2:
        return 1.0
    index = float(_pairs(matrix).sum())
    sum_rows = float(_pairs(rows).sum())
    sum_cols = float(_pairs(cols).sum())
    all_pairs = float(total * (total - 1) // 2)
    expected = sum_rows * sum_cols / all_pairs
    maximum = (sum_rows + sum_cols) / 2.0
    if maximum == expected:
        return 1.0 if index == expected else 0.0
    return (index - expected) / (maximum - expected)


def pairwise_scores(predicted: Clustering, gold: Clustering) -> MatchingScores:
    """Pairwise precision/recall/F1 implied by the two partitions.

    A pair of elements is predicted positive when co-clustered in
    *predicted* and labelled positive when co-clustered in *gold*; the
    counts come exactly from the contingency marginals, and the score
    arithmetic matches :func:`repro.eval.metrics.f1_score`, so cluster
    evaluations reconcile with the pairwise evaluator.
    """
    matrix, rows, cols = _contingency(predicted, gold)
    total = int(rows.sum())
    tp = int(_pairs(matrix).sum())
    predicted_positive = int(_pairs(rows).sum())
    gold_positive = int(_pairs(cols).sum())
    fp = predicted_positive - tp
    fn = gold_positive - tp
    tn = total * (total - 1) // 2 - tp - fp - fn
    precision = 100.0 * tp / (tp + fp) if (tp + fp) else 0.0
    recall = 100.0 * tp / (tp + fn) if (tp + fn) else 0.0
    f1 = (
        2 * precision * recall / (precision + recall)
        if (precision + recall)
        else 0.0
    )
    return MatchingScores(
        precision=precision, recall=recall, f1=f1, tp=tp, fp=fp, fn=fn, tn=tn
    )


def cluster_scores(predicted: Clustering, gold: Clustering) -> ClusterScores:
    """All cluster-level scores between two partitions of one element set."""
    b3_precision, b3_recall, b3_f1 = b_cubed(predicted, gold)
    return ClusterScores(
        b3_precision=b3_precision,
        b3_recall=b3_recall,
        b3_f1=b3_f1,
        ari=adjusted_rand_index(predicted, gold),
        pairwise=pairwise_scores(predicted, gold),
        predicted_clusters=len(predicted.clusters),
        gold_clusters=len(gold.clusters),
        records=len(predicted.elements),
    )
