"""Sharded, durable entity resolution: N journal-backed stores, one clustering.

:class:`ShardedResolutionStore` partitions an online resolution workload
over ``K`` independent :class:`~repro.resolve.incremental.ResolutionStore`
shards, each with its own write-ahead journal (and snapshot) in one
directory — so shards crash, recover, and compact independently, and
recovery parallelizes across them.

**Routing: replicate on blocking keys.**  A record is ingested into
*every* shard that owns one of its blocking keys (``key % K``, the same
pure routing function :class:`~repro.index.shard.ShardedBandIndex` uses
for postings).  Keys come from the candidate index itself
(:meth:`~repro.index.protocol.CandidateIndex.blocking_keys`): stable
token hashes for the shared-token index, LSH band keys for the MinHash
index — so for any pair the index would ever surface as candidates, the
two key sets intersect, and the pair **co-occurs in at least one
shard**, where the full pairwise predicate (and the engine) decides it.
A record with no blocking keys is a candidate for nothing; it is stored
on a single hash-routed shard purely for durability.

**Why K shards ≡ 1 shard (byte-identical clustering).**  Candidacy is a
symmetric function of the two records alone and the engine is
deterministic per pair, so the union of shard-local positive decisions
spans the same connectivity as the unsharded run's: every unsharded
candidate pair is a candidate in some shard, where it is either decided
(same verdict) or short-circuited — and a shard only short-circuits a
pair whose endpoints are already connected by genuine global positive
edges (its own decisions plus delivered cross-shard merges, below).
Connected components over the union therefore equal the unsharded
components, and :meth:`clustering` — computed from the deduplicated
global decision set plus user constraints — is byte-identical for every
shard count, insertion order, and kill/resume schedule.  See DESIGN.md
§18 for the worked argument.

**Cross-shard merge queue.**  Each positive decision is enqueued on a
FIFO :class:`MergeQueue` and delivered — deterministically, in decision
order, to co-owning shards in ascending shard order — as an idempotent
journaled must-link (:meth:`ResolutionStore.add_must_link`).  Delivery
never changes the clustering (the pair is already a global positive
edge); it teaches sibling shards about connectivity they did not decide
themselves, so their short-circuiting saves the duplicate engine calls
replication would otherwise cost.  Delivery to a dead shard is simply
skipped: :meth:`resume_shard` re-drains the full decision history
(idempotence makes that free of duplicates).

**Crash model.**  :meth:`kill_shard` drops a shard exactly as a process
death would — the journal handle closes, nothing else is flushed —
while the other shards keep ingesting; records routed to a dead shard
wait in a per-shard backlog.  :meth:`resume_shard` recovers the shard
from its journal (snapshot-aware, torn-tail repairing), re-drains
merges, and replays the backlog.  :meth:`recover` rebuilds the whole
fleet, repairing and replaying **all shards concurrently** before one
final merge drain.

The wrapper itself is synchronized externally (one ingesting driver);
the per-shard stores keep their own locks, so reads and recovery can
still overlap shard-internally.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Annotated, Callable, Iterable, Sequence

from repro._util import stable_hash
from repro.concurrency import guarded_by, idempotent, shutdown_order
from repro.datasets.schema import Record
from repro.engine.engine import MatchingEngine
from repro.index.protocol import CandidateIndex
from repro.resolve.canonical import golden_records
from repro.resolve.clusterer import (
    Clustering,
    PairDecision,
    correlation_cluster,
    transitive_closure,
)
from repro.resolve.incremental import ResolutionStore, TokenCandidateIndex

__all__ = [
    "MergeQueue",
    "ShardedIngestResult",
    "ShardedResolutionStore",
    "route_record",
    "shard_journal_path",
]


def shard_journal_path(directory: str | Path, shard: int) -> Path:
    """Canonical journal path of one shard within a store directory."""
    return Path(directory) / f"shard-{shard:03d}.journal"


def route_record(
    record: Record, shards: int, router: CandidateIndex
) -> tuple[int, ...]:
    """Owner shards of one record: ``key % shards`` over its blocking keys.

    A pure function of the record's description (plus its id for the
    key-less durability fallback), shared by the façade's router and by
    external ingest drivers — e.g. one journal-writer process per shard —
    that must agree with it byte-for-byte.  Key-less records (no blocking
    tokens) are candidates for nothing; they get a single hash-routed
    home shard for durability only.
    """
    keys = router.blocking_keys(record.description)
    if not keys:
        return (stable_hash("route", record.record_id) % shards,)
    return tuple(sorted({key % shards for key in keys}))


class MergeQueue:
    """Deterministic FIFO of cross-shard merge events.

    Holds ``(source_shard, (left, right))`` tuples in enqueue order;
    :meth:`drain` pops them in that order and hands each to the delivery
    callback exactly once.  The queue is the ordering rule, not the
    idempotence: re-delivery is made harmless by the receiving shard's
    ``add_must_link`` dedup, which is what lets recovery re-drain whole
    decision histories.
    """

    _pending: Annotated["list[tuple[int, tuple[str, str]]]", guarded_by("_lock")]
    _closed: Annotated[bool, guarded_by("_lock")]

    def __init__(
        self, deliver: Callable[[int, tuple[str, str]], None]
    ) -> None:
        self._deliver = deliver
        self._lock = threading.Lock()
        self._pending = []
        self._closed = False

    def __len__(self) -> int:
        with self._lock:
            return len(self._pending)

    def enqueue(self, source: int, pair: tuple[str, str]) -> None:
        """Queue one merge decided by *source* for cross-shard delivery."""
        with self._lock:
            if self._closed:
                raise ValueError("merge queue is closed")
            self._pending.append((source, pair))

    def drain(self) -> int:
        """Deliver every queued merge in FIFO order; returns the count.

        Delivery happens outside the queue lock (it journals into other
        shards); merges enqueued *by* a delivery would be picked up by
        the loop, though must-link application never produces new
        merges.
        """
        delivered = 0
        while True:
            with self._lock:
                if not self._pending:
                    return delivered
                batch = self._pending[:]
                del self._pending[:]
            for source, pair in batch:
                self._deliver(source, pair)
                delivered += 1

    @idempotent
    def close(self) -> None:
        """Drain any queued merges and refuse further enqueues."""
        self.drain()
        with self._lock:
            self._closed = True


@dataclass(frozen=True)
class ShardedIngestResult:
    """What one sharded ``ingest`` call did, aggregated over owner shards."""

    record_id: str
    #: shard numbers the record was routed to (replication set).
    owners: tuple
    #: owner shards that were dead — the record is backlogged there.
    deferred: tuple
    #: summed over owner shards (replication makes these ≥ the unsharded
    #: run's per-record numbers; cross-shard must-links claw most back).
    candidates: int
    engine_calls: int
    short_circuited: int
    #: canonical pairs newly decided as matches across all owner shards.
    merges: tuple


class ShardedResolutionStore:
    """K independent journal-backed resolution shards behind one façade."""

    _shards: "list[ResolutionStore | None]"
    _merges: MergeQueue
    #: drain pending cross-shard merges before the shard journals close.
    __shutdown_order__ = shutdown_order("_merges", "_shards")

    def __init__(
        self,
        engines: MatchingEngine | Sequence[MatchingEngine],
        directory: str | Path,
        shards: int = 4,
        mode: str = "transitive",
        index_factory: Callable[[], CandidateIndex] | None = None,
        min_shared: int = 1,
        min_agreement: float = 0.5,
        chunk_size: int = 32,
        short_circuit: bool = True,
        must_link: Iterable[tuple[str, str]] = (),
        cannot_link: Iterable[tuple[str, str]] = (),
        _stores: "list[ResolutionStore] | None" = None,
    ) -> None:
        if shards <= 0:
            raise ValueError("shards must be positive")
        self.directory = Path(directory)
        self.shards = shards
        self.mode = mode
        self._index_factory = (
            index_factory
            if index_factory is not None
            else (lambda: TokenCandidateIndex(min_shared=min_shared))
        )
        #: routing-only index instance — never ingested into; its
        #: ``blocking_keys`` must be a pure function of the description,
        #: which every CandidateIndex implementation guarantees.
        self._router = self._index_factory()
        self._store_kwargs = {
            "mode": mode,
            "min_agreement": min_agreement,
            "chunk_size": chunk_size,
            "short_circuit": short_circuit,
            "must_link": tuple(must_link),
            "cannot_link": tuple(cannot_link),
        }
        self._engines = self._spread_engines(engines, shards)
        if _stores is not None:
            self._shards = list(_stores)
        else:
            self.directory.mkdir(parents=True, exist_ok=True)
            self._shards = [
                ResolutionStore(
                    self._engines[i],
                    index=self._index_factory(),
                    journal=shard_journal_path(self.directory, i),
                    journal_meta={"shard": i, "shards": shards},
                    **self._store_kwargs,
                )
                for i in range(shards)
            ]
        self._merges = MergeQueue(self._deliver)
        #: records routed to a dead shard, replayed on resume (in order).
        self._backlog: dict[int, list[Record]] = {i: [] for i in range(shards)}
        #: replication set per record id (pure function of the
        #: description, cached so merge delivery never re-tokenizes).
        self._owners: dict[str, tuple[int, ...]] = {}
        for shard in self._shards:
            for record in shard.records():
                if record.record_id not in self._owners:
                    self._owners[record.record_id] = self._route(record)

    @staticmethod
    def _spread_engines(
        engines: MatchingEngine | Sequence[MatchingEngine], shards: int
    ) -> "list[MatchingEngine]":
        if isinstance(engines, MatchingEngine):
            return [engines] * shards
        spread = list(engines)
        if len(spread) != shards:
            raise ValueError(
                f"got {len(spread)} engines for {shards} shards "
                f"(pass one shared engine, or exactly one per shard)"
            )
        return spread

    # ---------------------------------------------------------------- routing

    def _route(self, record: Record) -> tuple[int, ...]:
        """Owner shards of one record (see :func:`route_record`)."""
        return route_record(record, self.shards, self._router)

    def owners_of(self, record: Record) -> tuple[int, ...]:
        """The (cached) replication set of a record."""
        owners = self._owners.get(record.record_id)
        if owners is None:
            owners = self._route(record)
            self._owners[record.record_id] = owners
        return owners

    def _deliver(self, source: int, pair: tuple[str, str]) -> None:
        """Hand one merge to every live co-owning shard except its source."""
        left_owners = self._owners.get(pair[0], ())
        right_owners = self._owners.get(pair[1], ())
        for target in sorted(set(left_owners) & set(right_owners)):
            if target == source:
                continue
            shard = self._shards[target]
            if shard is None:
                # Dead shard: resume_shard re-drains the full decision
                # history, so dropping the delivery here loses nothing.
                continue
            shard.add_must_link(pair[0], pair[1])

    # -------------------------------------------------------------- ingestion

    def ingest(self, record: Record) -> ShardedIngestResult:
        """Route one record to its owner shards and propagate its merges.

        Idempotent per shard (a shard that already holds the record is
        skipped), so a driver that crashed mid-call can simply re-ingest
        the same record after recovery.  Owner shards that are currently
        dead defer the record to their backlog.
        """
        owners = self.owners_of(record)
        deferred: list[int] = []
        candidates = engine_calls = short_circuited = 0
        merges: list[tuple[str, str]] = []
        for owner in owners:
            shard = self._shards[owner]
            if shard is None:
                self._backlog[owner].append(record)
                deferred.append(owner)
                continue
            if record.record_id in shard:
                continue
            result = shard.ingest(record)
            candidates += result.candidates
            engine_calls += result.engine_calls
            short_circuited += result.short_circuited
            if self.mode == "transitive":
                for pair in result.merges:
                    if pair not in merges:
                        merges.append(pair)
                    self._merges.enqueue(owner, pair)
                self._merges.drain()
            else:
                merges.extend(p for p in result.merges if p not in merges)
        return ShardedIngestResult(
            record_id=record.record_id,
            owners=owners,
            deferred=tuple(deferred),
            candidates=candidates,
            engine_calls=engine_calls,
            short_circuited=short_circuited,
            merges=tuple(merges),
        )

    def ingest_all(self, records: Sequence[Record]) -> "list[ShardedIngestResult]":
        """Ingest records in order."""
        return [self.ingest(record) for record in records]

    def __len__(self) -> int:
        return len(self._known_records())

    def __contains__(self, record_id: str) -> bool:
        return any(
            shard is not None and record_id in shard for shard in self._shards
        )

    # ------------------------------------------------------------- durability

    def snapshot(self) -> "list[Path]":
        """Checkpoint every live shard (see ``ResolutionStore.snapshot``)."""
        return [
            shard.snapshot() for shard in self._shards if shard is not None
        ]

    def compact(self) -> "list[Path]":
        """Snapshot + journal-swap every live shard."""
        return [
            shard.compact() for shard in self._shards if shard is not None
        ]

    def kill_shard(self, shard: int) -> None:
        """Simulate one shard's process dying mid-run.

        The journal handle closes (exactly what the OS would do) and the
        shard's in-memory state is discarded; every other shard keeps
        serving.  Records routed here meanwhile accumulate in the
        backlog until :meth:`resume_shard`.
        """
        store = self._shards[shard]
        if store is None:
            raise ValueError(f"shard {shard} is already dead")
        store.close()
        self._shards[shard] = None

    def resume_shard(
        self, shard: int, engine: MatchingEngine | None = None
    ) -> None:
        """Recover one dead shard from its journal and catch it up.

        Recovery repairs the torn tail, loads the shard snapshot if one
        exists, replays the journal suffix, and finishes interrupted
        ingests; then the full cross-shard decision history is re-drained
        (idempotent) and the backlog replayed, so the resumed shard is
        byte-identical to one that never died.  The recovered store is
        owned by (and reachable through) this façade, which closes it.
        """
        if self._shards[shard] is not None:
            raise ValueError(f"shard {shard} is still alive")
        if engine is not None:
            self._engines[shard] = engine
        store = ResolutionStore.recover(
            shard_journal_path(self.directory, shard),
            self._engines[shard],
            index=self._index_factory(),
            journal_meta={"shard": shard, "shards": self.shards},
            **self._store_kwargs,
        )
        self._shards[shard] = store
        self._redrain()
        backlog = self._backlog[shard]
        while backlog:
            record = backlog.pop(0)
            if record.record_id not in store:
                result = store.ingest(record)
                if self.mode == "transitive":
                    for pair in result.merges:
                        self._merges.enqueue(shard, pair)
                    self._merges.drain()

    def _redrain(self) -> None:
        """Re-deliver positive decisions a shard is actually missing.

        Idempotent (receiving shards dedup), deterministic (shards in
        ascending order, decisions in canonical order), and the recovery
        counterpart of per-ingest delivery: it repairs any must-link a
        shard missed while it was dead.  Incremental: the decision
        history is consulted in full, but a pair is only enqueued when
        some live co-owner does not already know it — after a clean
        recovery that is zero deliveries, so re-drain cost tracks the
        missing knowledge, not the history length.
        """
        if self.mode != "transitive":
            return
        known: "list[set | None]" = [
            None if shard is None else shard.known_pairs()
            for shard in self._shards
        ]
        seen: set = set()
        for owner, shard in enumerate(self._shards):
            if shard is None:
                continue
            for decision in shard.decision_log():
                if not decision.match:
                    continue
                left, right = decision.left, decision.right
                key = (left, right) if left <= right else (right, left)
                if key in seen:
                    continue
                seen.add(key)
                left_owners = self._owners.get(key[0], ())
                right_owners = self._owners.get(key[1], ())
                for target in set(left_owners) & set(right_owners):
                    if target == owner:
                        continue
                    pairs = known[target]
                    if pairs is None or key in pairs:
                        continue
                    # _deliver fans out to every live co-owner, so one
                    # enqueue per missing pair is enough.
                    self._merges.enqueue(owner, key)
                    break
        self._merges.drain()

    @classmethod
    def recover(
        cls,
        directory: str | Path,
        engines: MatchingEngine | Sequence[MatchingEngine],
        shards: int | None = None,
        **kwargs: object,
    ) -> "ShardedResolutionStore":
        """Rebuild a whole sharded store, recovering all shards in parallel.

        Every shard journal repairs its torn tail, loads its snapshot,
        and replays its suffix **concurrently** (they are independent
        files and independent stores); one merge-queue drain afterwards
        restores cross-shard connectivity knowledge.  ``shards`` defaults
        to the number of ``shard-*.journal`` files present.
        """
        directory = Path(directory)
        if shards is None:
            shards = len(sorted(directory.glob("shard-*.journal")))
            if shards == 0:
                raise ValueError(f"no shard journals under {directory}")
        engine_list = cls._spread_engines(engines, shards)
        index_factory = kwargs.get("index_factory")
        min_shared = int(kwargs.get("min_shared", 1))  # type: ignore[call-overload]
        factory: Callable[[], CandidateIndex] = (
            index_factory  # type: ignore[assignment]
            if index_factory is not None
            else (lambda: TokenCandidateIndex(min_shared=min_shared))
        )
        store_kwargs = {
            key: kwargs[key]
            for key in (
                "mode", "min_agreement", "chunk_size", "short_circuit",
                "must_link", "cannot_link",
            )
            if key in kwargs
        }
        recovered: "list[ResolutionStore | None]" = [None] * shards

        def recover_shard(i: int) -> None:
            recovered[i] = ResolutionStore.recover(
                shard_journal_path(directory, i),
                engine_list[i],
                index=factory(),
                journal_meta={"shard": i, "shards": shards},
                **store_kwargs,  # type: ignore[arg-type]
            )

        try:
            with ThreadPoolExecutor(max_workers=min(shards, 8)) as pool:
                # list() propagates the first per-shard failure.
                list(pool.map(recover_shard, range(shards)))
        except BaseException:
            for shard in recovered:
                if shard is not None:
                    shard.close()
            raise
        store = cls(
            engine_list,
            directory,
            shards=shards,
            _stores=recovered,  # type: ignore[arg-type]
            **kwargs,  # type: ignore[arg-type]
        )
        store._redrain()
        return store

    @idempotent
    def close(self) -> None:
        """Drain pending merges, then close every live shard journal."""
        self._merges.close()
        for shard in self._shards:
            if shard is not None:
                shard.close()

    def __enter__(self) -> "ShardedResolutionStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -------------------------------------------------------------- read-outs

    def _known_records(self) -> "dict[str, Record]":
        """Union of records across live shards (replication deduplicated)."""
        known: dict[str, Record] = {}
        for shard in self._shards:
            if shard is None:
                continue
            for record in shard.records():
                known.setdefault(record.record_id, record)
        return known

    def decisions(self) -> tuple[PairDecision, ...]:
        """The global decision set: shard decisions deduplicated by pair.

        A replicated pair may be decided by more than one shard; the
        engine is deterministic per pair, so the copies agree and the
        first (lowest shard number) is kept.
        """
        merged: dict[tuple[str, str], PairDecision] = {}
        for shard in self._shards:
            if shard is None:
                continue
            for decision in shard.decisions():
                merged.setdefault(decision.key, decision)
        return tuple(
            sorted(merged.values(), key=lambda d: (d.key, d.source))
        )

    def clustering(self) -> Clustering:
        """The global partition over every record on a live shard.

        Computed from the deduplicated decision set plus the *user's*
        constraints — cross-shard delivered must-links are derived from
        decisions already in the set, so they are deliberately not
        re-added here.
        """
        records = self._known_records()
        elements = tuple(sorted(records))
        decisions = self.decisions()
        present = set(records)
        must = tuple(
            (a, b)
            for a, b in self._store_kwargs["must_link"]
            if a in present and b in present
        )
        cannot = tuple(
            (a, b)
            for a, b in self._store_kwargs["cannot_link"]
            if a in present and b in present
        )
        if self.mode == "transitive":
            return transitive_closure(
                elements, decisions, must_link=must, cannot_link=cannot
            )
        return correlation_cluster(
            elements, decisions, must_link=must, cannot_link=cannot,
            min_agreement=float(self._store_kwargs["min_agreement"]),
        )

    def golden_records(self) -> "dict[str, Record]":
        """Cluster id → golden record for the current global partition."""
        return golden_records(self.clustering(), self._known_records())

    def stats(self) -> "dict[str, object]":
        """Aggregate and per-shard operational counters."""
        per_shard: list[dict[str, object] | None] = []
        for shard in self._shards:
            if shard is None:
                per_shard.append(None)
                continue
            per_shard.append(
                {
                    "records": len(shard),
                    "decisions": len(shard.decisions()),
                    "engine_calls": shard.engine_calls,
                    "short_circuited": shard.short_circuited,
                    "journal_seq": shard.journal_seq(),
                }
            )
        return {
            "shards": self.shards,
            "mode": self.mode,
            "records": len(self),
            "decisions": len(self.decisions()),
            "dead_shards": [
                i for i, shard in enumerate(self._shards) if shard is None
            ],
            "backlogged": sum(len(b) for b in self._backlog.values()),
            "per_shard": per_shard,
        }
