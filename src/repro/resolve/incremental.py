"""Incremental entity resolution: stream records into live clusters.

:class:`ResolutionStore` is the online counterpart of the batch
pipeline: records arrive one at a time, each is blocked against the
records already ingested through a pluggable
:class:`~repro.index.protocol.CandidateIndex` (shared-token inverted
index by default, MinHash/LSH via
:class:`repro.index.MinHashCandidateIndex`), the surviving candidate
pairs are decided by the :class:`~repro.engine.MatchingEngine` in
micro-batched chunks, and the cluster structure updates in place.

**Order invariance (transitive mode).**  The candidate predicate is a
symmetric function of the two records alone (share ≥ ``min_shared``
tokens, or band collision plus a similarity floor), so over a full
ingestion the set of candidate edges is the same for every insertion
order; the engine's decision for a pair is a
deterministic function of the pair; and connected components are a
function of the positive-edge *set*.  Cluster-aware short-circuiting
preserves this: a pair is only skipped when its endpoints are already
connected, and for transitive closure such a decision cannot change the
partition (a positive union would be a no-op, a negative is ignored) —
so every insertion order, with or without short-circuiting, yields the
same clustering as one batch run.  Correlation mode aggregates *all*
decisions as evidence, so there short-circuiting is disabled and the
clustering is recomputed from the full (sorted) decision log.

**Durability.**  ``journal=`` write-ahead-logs every record, decision,
commit, and must-link to an fsync'd JSONL file
(:mod:`repro.faults.journal`); :meth:`recover` rebuilds a killed store
and finishes its in-flight work byte-identically.  :meth:`snapshot`
checkpoints the live state (records, decisions, constraints, candidate
index) at the current journal sequence, and :meth:`compact` additionally
swaps the journal for a fresh suffix-only file — after which recovery
is O(live state + suffix), never O(full history).  See
:mod:`repro.resolve.snapshot` and DESIGN.md §18.

**Thread safety.**  One lock guards the record table, candidate index,
union-find, and decision log (``@guarded_by`` declarations below,
enforced by ``repro-em lint --deep``).  Engine dispatch — the only
blocking work — always happens outside the lock: ``ingest`` snapshots
candidates under the lock, decides them unlocked, applies the verdicts
under the lock, and loops until no undecided candidate remains, so
records ingested concurrently by other threads are still compared.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Annotated, Iterable, Sequence

from repro.blocking.token import blocking_tokens
from repro.concurrency import guarded_by, idempotent
from repro.datasets.schema import Record
from repro.engine.engine import MatchingEngine, MatchResult
from repro.index.protocol import CandidateIndex
from repro.resolve.canonical import golden_records
from repro.resolve.clusterer import (
    Clustering,
    PairDecision,
    correlation_cluster,
    transitive_closure,
)
from repro.resolve.snapshot import (
    SNAPSHOT_VERSION,
    load_snapshot,
    snapshot_path_for,
    write_snapshot_doc,
)
from repro.resolve.uf import UnionFind

__all__ = ["IngestResult", "ResolutionStore", "TokenCandidateIndex", "decision_score"]

#: evidence weight per decision source: degraded fallback answers count
#: half — the threshold matcher is the engine's emergency path, not the
#: model (see DESIGN.md §9), so its verdicts should not veto or force
#: merges as strongly as real completions.
_SOURCE_SCORES = {"backend": 1.0, "cache": 1.0, "fallback": 0.5}


def decision_score(result: MatchResult) -> float:
    """Evidence weight of one engine answer (keyed on its source)."""
    return _SOURCE_SCORES.get(result.source, 1.0)


def _normalize_source(source: str) -> str:
    """Collapse ``cache`` answers to ``backend`` in the decision log.

    A cache hit *is* a backend answer (same completion, same decision) —
    it only reached this store through the engine's memo table.  Folding
    the two keeps a journaled run byte-identical whether it was
    interrupted or not: a resumed run starts with a cold cache, so the
    same logical answer may arrive via either source.
    """
    return "backend" if source == "cache" else source


class TokenCandidateIndex(CandidateIndex):
    """Inverted index serving a *pairwise* shared-token candidate predicate.

    Two records are candidates when their descriptions share at least
    ``min_shared`` distinct blocking tokens.  The predicate depends only
    on the two records — no collection-level frequency pruning — which is
    what makes the incremental candidate edge set insertion-order-
    invariant.  The index is not locked: :class:`ResolutionStore` guards
    it.  The MinHash/LSH counterpart with the same contract is
    :class:`repro.index.MinHashCandidateIndex`.
    """

    def __init__(self, min_shared: int = 1) -> None:
        if min_shared <= 0:
            raise ValueError("min_shared must be positive")
        self.min_shared = min_shared
        self._postings: dict[str, list[str]] = {}

    def add(self, record_id: str, description: str) -> None:
        """Index one record's description tokens."""
        for token in sorted(set(blocking_tokens(description))):
            self._postings.setdefault(token, []).append(record_id)

    def candidates(self, description: str, exclude: str | None = None) -> tuple[str, ...]:
        """Sorted ids of indexed records sharing ≥ ``min_shared`` tokens."""
        shared: dict[str, int] = {}
        for token in sorted(set(blocking_tokens(description))):
            for record_id in self._postings.get(token, ()):
                shared[record_id] = shared.get(record_id, 0) + 1
        return tuple(
            sorted(
                record_id
                for record_id, count in shared.items()
                if count >= self.min_shared and record_id != exclude
            )
        )

    def snapshot_state(self) -> dict:
        """JSON-ready postings map (see :mod:`repro.resolve.snapshot`)."""
        return {"postings": {t: list(ids) for t, ids in self._postings.items()}}

    def restore_state(self, state: dict) -> None:
        """Rebuild the postings map from :meth:`snapshot_state` output."""
        self._postings = {
            token: list(ids) for token, ids in state["postings"].items()
        }


@dataclass(frozen=True)
class IngestResult:
    """What one ``ingest`` call did."""

    record_id: str
    #: candidate records the blocker surfaced for this record.
    candidates: int
    #: engine decisions actually requested.
    engine_calls: int
    #: candidate pairs skipped because their endpoints were co-clustered.
    short_circuited: int
    #: canonical id of the cluster the record landed in.
    cluster_id: str
    #: size of that cluster after the update.
    cluster_size: int
    #: canonical (sorted) pairs this call decided as matches — the merge
    #: events a sharded wrapper must route to sibling shards.
    merges: tuple = ()


class ResolutionStore:
    """Live entity-resolution state: records in, clusters out."""

    #: engine dispatch happens outside the store lock (blocking work).
    engine: MatchingEngine
    _records: Annotated["dict[str, Record]", guarded_by("_lock")]
    _index: Annotated[CandidateIndex, guarded_by("_lock")]
    _uf: Annotated[UnionFind, guarded_by("_lock")]
    _decisions: Annotated["list[PairDecision]", guarded_by("_lock")]
    _compared: Annotated["set[tuple[str, str]]", guarded_by("_lock")]
    _must_pairs: Annotated["set[tuple[str, str]]", guarded_by("_lock")]
    _must_by_member: Annotated["dict[str, list[str]]", guarded_by("_lock")]
    _committed: Annotated["set[str]", guarded_by("_lock")]
    _inflight: Annotated[int, guarded_by("_lock")]
    engine_calls: Annotated[int, guarded_by("_lock")]
    short_circuited: Annotated[int, guarded_by("_lock")]

    def __init__(
        self,
        engine: MatchingEngine,
        mode: str = "transitive",
        min_shared: int = 1,
        min_agreement: float = 0.5,
        chunk_size: int = 32,
        short_circuit: bool = True,
        must_link: Iterable[tuple[str, str]] = (),
        cannot_link: Iterable[tuple[str, str]] = (),
        journal: str | Path | None = None,
        index: CandidateIndex | None = None,
        journal_meta: dict | None = None,
        _recovering: bool = False,
    ) -> None:
        if mode not in ("transitive", "correlation"):
            raise ValueError(f"unknown resolution mode {mode!r}")
        if chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        self.engine = engine
        self.mode = mode
        self.min_agreement = min_agreement
        self.chunk_size = chunk_size
        #: skipping is only sound for transitive closure without
        #: cannot-links (see module docstring).
        self.short_circuit = (
            short_circuit and mode == "transitive" and not tuple(cannot_link)
        )
        self.cannot_link = tuple(sorted({tuple(sorted(p)) for p in cannot_link}))
        self._lock = threading.RLock()
        self._records = {}
        #: blocking-strategy injection point: any CandidateIndex whose
        #: predicate is a symmetric function of the two records alone
        #: preserves the store's insertion-order invariance (see the
        #: module docstring); ``min_shared`` configures the default
        #: token index only.
        self._index = (
            index if index is not None
            else TokenCandidateIndex(min_shared=min_shared)
        )
        self._uf = UnionFind()
        self._decisions = []
        self._compared = set()
        self._must_pairs = set()
        self._must_by_member = {}
        self._committed = set()
        self._inflight = 0
        self.engine_calls = 0
        self.short_circuited = 0
        for a, b in must_link:
            self._apply_must_link(a, b)
        self._journal = None
        #: extra header fields a wrapper pins into the journal (e.g. the
        #: sharded store's shard number/count); validated on recovery.
        self._journal_meta = dict(journal_meta or {})
        #: global journal sequence of the first entry the current writer
        #: will append (bumped by recovery replay and compaction).
        self._seq_at_open = 0
        if journal is not None:
            from repro.faults.journal import JournalWriter

            path = Path(journal)
            if not _recovering and path.exists() and path.stat().st_size:
                raise ValueError(
                    f"journal {path} already has entries; resume it with "
                    f"ResolutionStore.recover() instead"
                )
            self._journal = JournalWriter(
                path,
                header={
                    "kind": "resolve",
                    "mode": mode,
                    "index": type(self._index).__name__,
                    **self._journal_meta,
                },
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def __contains__(self, record_id: str) -> bool:
        with self._lock:
            return record_id in self._records

    @idempotent
    def close(self) -> None:
        """Release the write-ahead journal handle.

        Idempotent and thread-safe; a store built without a journal is a
        no-op.  The store itself stays readable after close — only
        further journaled ingestion is cut off (by the closed handle).
        """
        with self._lock:
            if self._journal is not None:
                self._journal.close()
                self._journal = None

    def __enter__(self) -> "ResolutionStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------ constraints

    def _apply_must_link(self, a: str, b: str) -> bool:
        """Register a must-link pair; union it if both sides are present.

        Returns False when the pair was already known.  The lock is
        reentrant, so callers already inside it can use this directly.
        """
        if a == b:
            raise ValueError(f"must-link pair of {a!r} with itself")
        pair = (a, b) if a < b else (b, a)
        with self._lock:
            if pair in self._must_pairs:
                return False
            self._must_pairs.add(pair)
            self._must_by_member.setdefault(pair[0], []).append(pair[1])
            self._must_by_member.setdefault(pair[1], []).append(pair[0])
            if pair[0] in self._records and pair[1] in self._records:
                self._uf.union(pair[0], pair[1])
        return True

    def add_must_link(self, a: str, b: str) -> bool:
        """Add one must-link constraint at runtime (journaled, idempotent).

        This is the delivery edge of cross-shard merge routing: a match
        decided in one shard arrives at every sibling shard holding both
        records as a must-link, merging them there without another
        engine call.  Returns False (and journals nothing) when the pair
        was already constrained.
        """
        with self._lock:
            fresh = self._apply_must_link(a, b)
        if fresh and self._journal is not None:
            pair = (a, b) if a < b else (b, a)
            self._journal.append(
                {"type": "must_link", "left": pair[0], "right": pair[1]}
            )
        return fresh

    @property
    def must_link(self) -> tuple:
        """Every must-link constraint (constructor plus runtime), sorted."""
        with self._lock:
            return tuple(sorted(self._must_pairs))

    def known_pairs(self) -> set:
        """Canonical pairs this store has decided or been constrained on.

        Delivering a must-link for any of these is a guaranteed no-op;
        sharded re-drain uses this to deliver only the connectivity a
        shard is actually missing.
        """
        with self._lock:
            return self._must_pairs | self._compared

    # -------------------------------------------------------------- ingestion

    def ingest(self, record: Record) -> IngestResult:
        """Add one record: block → decide → update clusters.

        Safe to call from multiple threads; the engine call runs outside
        the store lock, and the snapshot/apply loop re-checks for records
        that arrived while it was deciding.
        """
        with self._lock:
            if record.record_id in self._records:
                raise ValueError(
                    f"record {record.record_id!r} already ingested"
                )
            self._inflight += 1
            self._records[record.record_id] = record
            self._index.add(record.record_id, record.description)
            self._uf.add(record.record_id)
            for partner in self._must_by_member.get(record.record_id, ()):
                if partner in self._records:
                    self._uf.union(record.record_id, partner)
        try:
            if self._journal is not None:
                # Write-ahead: the record is acknowledged before any of its
                # comparisons run, so a crash mid-comparison leaves it
                # journaled-but-uncommitted and ``recover`` finishes it.
                self._journal.append(
                    {
                        "type": "record",
                        "record_id": record.record_id,
                        "description": record.description,
                        "attributes": dict(record.attributes),
                    }
                )
            candidates, calls, skipped, merges = self._decide_candidates(record)
            if self._journal is not None:
                self._journal.append(
                    {
                        "type": "commit",
                        "record_id": record.record_id,
                        "candidates": candidates,
                        "engine_calls": calls,
                        "short_circuited": skipped,
                    }
                )
            with self._lock:
                self._committed.add(record.record_id)
        finally:
            with self._lock:
                self._inflight -= 1
        cluster = self._cluster_of(record.record_id)
        return IngestResult(
            record_id=record.record_id,
            candidates=candidates,
            engine_calls=calls,
            short_circuited=skipped,
            cluster_id=cluster[0],
            cluster_size=len(cluster),
            merges=tuple(merges),
        )

    def _decide_candidates(
        self, record: Record
    ) -> tuple[int, int, int, list]:
        """Block *record* and decide its pending pairs until none remain.

        Returns ``(candidates, engine_calls, short_circuited, merges)``
        for this record, where ``merges`` lists the canonical pairs
        decided as matches.  Shared by :meth:`ingest` and crash recovery:
        pairs whose decisions are already journaled sit in ``_compared``
        and are never re-asked, so finishing an uncommitted record after
        a crash decides exactly the pairs the interrupted run had not yet
        acknowledged.
        """
        candidates = 0
        calls = 0
        skipped = 0
        merges: list[tuple[str, str]] = []
        while True:
            with self._lock:
                #: (other id, prompt-left desc, prompt-right desc) —
                #: descriptions are ordered by the canonical (sorted) pair,
                #: NOT by arrival: the model's answer is not symmetric in
                #: its arguments, so a fixed orientation is what keeps the
                #: decision (and thus the clustering) insertion-order-free.
                todo: list[tuple[str, str, str]] = []
                for other in self._index.candidates(
                    record.description, exclude=record.record_id
                ):
                    pair = tuple(sorted((record.record_id, other)))
                    if pair in self._compared:
                        continue
                    self._compared.add(pair)
                    candidates += 1
                    if self.short_circuit and self._uf.connected(
                        record.record_id, other
                    ):
                        skipped += 1
                        self.short_circuited += 1
                        continue
                    first, second = pair
                    todo.append((
                        other,
                        self._records[first].description,
                        self._records[second].description,
                    ))
                    if len(todo) >= self.chunk_size:
                        break
            if not todo:
                break
            results = self.engine.match_pairs(
                [(left, right) for _, left, right in todo]
            )
            calls += len(results)
            decided: list[tuple[str, PairDecision]] = []
            for (other, _, _), result in zip(todo, results):
                first, second = sorted((record.record_id, other))
                decided.append(
                    (
                        other,
                        PairDecision(
                            left=first,
                            right=second,
                            match=result.decision,
                            score=decision_score(result),
                            source=_normalize_source(result.source),
                        ),
                    )
                )
            if self._journal is not None:
                # Journal (and fsync) the chunk before applying it: once a
                # decision is visible in memory it must survive a crash.
                for _, decision in decided:
                    self._journal.append(
                        {
                            "type": "decision",
                            "left": decision.left,
                            "right": decision.right,
                            "match": decision.match,
                            "score": decision.score,
                            "source": decision.source,
                        }
                    )
            with self._lock:
                self.engine_calls += len(results)
                for other, decision in decided:
                    self._decisions.append(decision)
                    if decision.match:
                        merges.append(decision.key)
                        if self.mode == "transitive":
                            self._uf.union(record.record_id, other)
        return candidates, calls, skipped, merges

    def ingest_all(self, records: Sequence[Record]) -> list[IngestResult]:
        """Ingest records in order (a convenience over repeated ``ingest``)."""
        return [self.ingest(record) for record in records]

    # ------------------------------------------------------------- durability

    def journal_seq(self) -> int:
        """Global journal sequence: entries acknowledged since journal birth.

        Monotonic across compactions (a compacted journal's header
        carries the sequence it starts at as ``basis``).  Zero for a
        store without a journal.
        """
        journal = self._journal
        if journal is None:
            return self._seq_at_open
        return self._seq_at_open + journal.entries

    def snapshot(self, path: str | Path | None = None) -> Path:
        """Checkpoint live state at the current journal sequence.

        The store must be journaled and quiescent (no ingest in flight):
        the snapshot's ``seq`` claims to cover exactly the journal prefix
        ``[0, seq)``, which only holds when no acknowledged-but-unapplied
        (or applied-but-unacknowledged) work exists.  Returns the path
        written.  See :mod:`repro.resolve.snapshot` for the format.
        """
        with self._lock:
            if self._journal is None:
                raise ValueError("snapshot requires a journaled store")
            if self._inflight:
                raise ValueError(
                    "snapshot requires a quiescent store "
                    f"({self._inflight} ingest(s) in flight)"
                )
            doc = self._snapshot_doc()
            target = (
                Path(path) if path is not None
                else snapshot_path_for(self._journal.path)
            )
        # The document is an immutable copy: writing it outside the lock
        # keeps file I/O off the store's critical section.
        return write_snapshot_doc(target, doc)

    def _snapshot_doc(self) -> dict:
        """JSON-ready live state (store quiescent; lock is reentrant)."""
        with self._lock:
            index_state = None
            state_of = getattr(self._index, "snapshot_state", None)
            if callable(state_of):
                index_state = state_of()
            return {
                "kind": "resolve-snapshot",
                "version": SNAPSHOT_VERSION,
                "mode": self.mode,
                "seq": self.journal_seq(),
                "records": [
                    {
                        "record_id": record.record_id,
                        "description": record.description,
                        "attributes": dict(record.attributes),
                        "committed": record.record_id in self._committed,
                    }
                    for record in self._records.values()
                ],
                "decisions": [
                    {
                        "left": d.left,
                        "right": d.right,
                        "match": d.match,
                        "score": d.score,
                        "source": d.source,
                    }
                    for d in self._decisions
                ],
                "must_link": [list(pair) for pair in sorted(self._must_pairs)],
                "cannot_link": [list(pair) for pair in self.cannot_link],
                # Materialized partition: restore loads this directly
                # instead of replaying one union per positive decision.
                "components": self._uf.snapshot_state(),
                "engine_calls": self.engine_calls,
                "short_circuited": self.short_circuited,
                "index": {
                    "class": type(self._index).__name__,
                    "state": index_state,
                },
            }

    def compact(self) -> Path:
        """Snapshot, then swap the journal for a suffix-only file.

        After compaction the journal on disk contains only entries past
        the snapshot (none, immediately after), with ``"basis"`` in its
        header recording the global sequence it starts at — so recovery
        cost is O(live state + suffix) no matter how long the store has
        been running.  Crash-safe at every step: the snapshot write is
        atomic, and the journal swap is a single ``os.replace`` (a crash
        in between leaves the old full journal, which recovery handles
        by skipping the first ``seq - basis`` entries).

        Like :meth:`snapshot`, requires a quiescent store; concurrent
        ingestion must be externally paused across the call.
        """
        import json as _json
        import os as _os

        from repro.faults.journal import JOURNAL_VERSION, JournalWriter, fsync_dir

        snapshot_path = self.snapshot()
        with self._lock:
            if self._journal is None:  # pragma: no cover — snapshot checked
                raise ValueError("compact requires a journaled store")
            seq = self.journal_seq()
            journal_path = self._journal.path
            index_name = type(self._index).__name__
            self._journal.close()
            self._journal = None
        header = {
            "type": "header",
            "version": JOURNAL_VERSION,
            "kind": "resolve",
            "mode": self.mode,
            "index": index_name,
            "basis": seq,
            **self._journal_meta,
        }
        tmp = journal_path.with_name(journal_path.name + ".tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(_json.dumps(header, sort_keys=True, ensure_ascii=True) + "\n")
            handle.flush()
            _os.fsync(handle.fileno())
        _os.replace(tmp, journal_path)
        fsync_dir(journal_path.parent)
        with self._lock:
            self._journal = JournalWriter(journal_path)
            self._seq_at_open = seq
        return snapshot_path

    # --------------------------------------------------------------- recovery

    @classmethod
    def recover(
        cls,
        path: str | Path,
        engine: MatchingEngine,
        **kwargs: object,
    ) -> "ResolutionStore":
        """Rebuild a journaled store after a crash and finish in-flight work.

        Loads the sibling snapshot when one exists (see :meth:`snapshot`)
        and replays only the journal suffix past it; otherwise replays
        the full journal.  Either way a torn final line is dropped and
        truncated from the file, the union-find / candidate index /
        compared-pair state is re-derived, and the comparison loop re-runs
        for any record whose ``commit`` entry never made it to disk.
        Journaled pairs are never re-asked, so the recovered store — and
        the continued run — is byte-identical to one that was never
        interrupted (decision sources are cache-normalized for exactly
        this reason).  The returned store keeps journaling to the same
        file.

        A journal whose header's configuration (kind, mode, index class,
        or any ``journal_meta`` field) does not match the resuming store
        raises a structured :class:`~repro.faults.journal.JournalError`
        carrying the offending path and line number.  A journal with no
        acknowledged header — the process died between creating the file
        and fsyncing the header — recovers as an *empty* store, not a
        corrupt one.
        """
        from repro.faults.journal import (
            JournalError,
            journal_header,
            read_journal,
            repair,
        )

        path = Path(path)
        mode = str(kwargs.get("mode", "transitive"))
        meta = dict(kwargs.get("journal_meta") or {})  # type: ignore[call-overload]
        snap_path = snapshot_path_for(path)
        state = load_snapshot(snap_path, mode=mode) if snap_path.exists() else None

        raw = path.read_bytes()
        if not raw or b"\n" not in raw:
            # Torn header: the journal never acknowledged anything.
            if state is not None:
                raise JournalError(
                    f"{path}: journal has no header but a snapshot exists "
                    f"at {snap_path} (journal file was lost or replaced)",
                    path=path,
                    lineno=1,
                )
            repair(path)
            return cls(engine, journal=path, _recovering=True, **kwargs)  # type: ignore[arg-type]

        expect = {"kind": "resolve", "mode": mode, **meta}
        entries, _ = read_journal(path, expect=expect)
        repair(path)
        header = journal_header(path)
        basis = header.get("basis", 0)
        if not isinstance(basis, int) or basis < 0:
            raise JournalError(
                f"{path}: journal header basis {basis!r} is not a "
                f"non-negative integer",
                path=path,
                lineno=1,
            )
        store = cls(engine, journal=path, _recovering=True, **kwargs)  # type: ignore[arg-type]
        recovered = False
        try:
            index_cls = type(store._index).__name__
            if "index" in header and header["index"] != index_cls:
                raise JournalError(
                    f"{path}: journal was written through index "
                    f"{header['index']!r} but the resuming store is "
                    f"configured with {index_cls!r}",
                    path=path,
                    lineno=1,
                )
            skip = 0
            pending_snapshot: list[Record] = []
            if state is not None:
                if basis > state["seq"]:
                    raise JournalError(
                        f"{path}: journal basis {basis} is past the snapshot "
                        f"sequence {state['seq']} — entries are missing",
                        path=path,
                        lineno=1,
                    )
                skip = state["seq"] - basis
                if skip > len(entries):
                    raise JournalError(
                        f"{path}: snapshot covers sequence {state['seq']} but "
                        f"the journal only holds {basis + len(entries)} "
                        f"entries",
                        path=path,
                        lineno=1,
                    )
                pending_snapshot = store._restore_snapshot(snap_path, state)
            pending = store._replay(path, entries[skip:], pending_snapshot)
            store._seq_at_open = basis + len(entries)
            for record in pending:
                store._finish(record)
            recovered = True
        finally:
            if not recovered:
                store.close()
        return store

    def _restore_snapshot(self, path: Path, state: dict) -> list[Record]:
        """Load a validated snapshot document; returns uncommitted records."""
        from repro.faults.journal import JournalError

        index_meta = state.get("index") or {}
        with self._lock:
            index_cls = type(self._index).__name__
        if index_meta.get("class") != index_cls:
            raise JournalError(
                f"{path}: snapshot was taken through index "
                f"{index_meta.get('class')!r} but the resuming store is "
                f"configured with {index_cls!r}",
                path=path,
                lineno=1,
            )
        snapshot_cannot = tuple(
            tuple(pair) for pair in state.get("cannot_link", [])
        )
        if snapshot_cannot != self.cannot_link:
            raise JournalError(
                f"{path}: snapshot cannot-link constraints "
                f"{snapshot_cannot!r} do not match the resuming store's "
                f"{self.cannot_link!r}",
                path=path,
                lineno=1,
            )
        records = [
            Record(
                record_id=str(entry["record_id"]),
                attributes=dict(entry.get("attributes") or {}),
                description=str(entry["description"]),
            )
            for entry in state["records"]
        ]
        committed = {
            str(entry["record_id"])
            for entry in state["records"]
            if entry.get("committed", True)
        }
        decisions = []
        decision_keys = []
        # Field types are trusted as-is: the document was serialized by
        # _snapshot_doc from already-validated decisions, and json round-
        # trips str/bool/float unchanged.
        for entry in state["decisions"]:
            left = entry["left"]
            right = entry["right"]
            decisions.append(
                PairDecision.trusted(
                    left, right, entry["match"], entry["score"],
                    entry["source"],
                )
            )
            decision_keys.append(
                (left, right) if left <= right else (right, left)
            )
        index_state = index_meta.get("state")
        components = state.get("components")
        with self._lock:
            for record in records:
                self._records[record.record_id] = record
            restore = getattr(self._index, "restore_state", None)
            if index_state is not None and callable(restore):
                restore(index_state)
            else:
                # No serialized index state: rebuild it by re-indexing
                # every record in insertion order (same end state, pays
                # tokenization/hashing again).
                for record in records:
                    self._index.add(record.record_id, record.description)
            if components is not None:
                # Materialized partition: load it flat and register the
                # must-link bookkeeping without re-running a union per
                # pair — connectivity is already in the components.
                self._uf.restore_state(components)
                for entry in state.get("must_link", []):
                    a, b = str(entry[0]), str(entry[1])
                    pair = (a, b) if a < b else (b, a)
                    if pair in self._must_pairs:
                        continue
                    self._must_pairs.add(pair)
                    self._must_by_member.setdefault(pair[0], []).append(pair[1])
                    self._must_by_member.setdefault(pair[1], []).append(pair[0])
                self._decisions.extend(decisions)
                self._compared.update(decision_keys)
            else:
                # Pre-components snapshot: re-derive the partition by
                # replaying unions the way journal replay would.
                for record in records:
                    self._uf.add(record.record_id)
                for pair in state.get("must_link", []):
                    self._apply_must_link(str(pair[0]), str(pair[1]))
                for decision in decisions:
                    self._decisions.append(decision)
                    self._compared.add(decision.key)
                    if self.mode == "transitive" and decision.match:
                        self._uf.union(decision.left, decision.right)
            self._committed |= committed
            self.engine_calls = int(state.get("engine_calls", len(decisions)))
            self.short_circuited = int(state.get("short_circuited", 0))
        return [r for r in records if r.record_id not in committed]

    def _replay(
        self,
        path: Path,
        entries: list[dict],
        pending: Sequence[Record] = (),
    ) -> list[Record]:
        """Apply journal *entries* on top of any restored snapshot state.

        *pending* carries snapshot-era uncommitted records; the combined
        (insertion-ordered) list of records still lacking a ``commit``
        entry is returned for :meth:`_finish`.
        """
        from repro.faults.journal import JournalError

        records: list[Record] = []
        committed: set[str] = set()
        decisions: list[PairDecision] = []
        must_pairs: list[tuple[str, str]] = []
        skipped = 0
        for entry in entries:
            kind = entry.get("type")
            if kind == "record":
                records.append(
                    Record(
                        record_id=str(entry["record_id"]),
                        attributes=dict(entry.get("attributes") or {}),
                        description=str(entry["description"]),
                    )
                )
            elif kind == "decision":
                decisions.append(
                    PairDecision(
                        left=str(entry["left"]),
                        right=str(entry["right"]),
                        match=bool(entry["match"]),
                        score=float(entry["score"]),
                        source=str(entry["source"]),
                    )
                )
            elif kind == "commit":
                committed.add(str(entry["record_id"]))
                skipped += int(entry.get("short_circuited", 0))
            elif kind == "must_link":
                must_pairs.append((str(entry["left"]), str(entry["right"])))
            else:
                raise JournalError(
                    f"{path}: unknown journal entry type {kind!r}",
                    path=path,
                )
        with self._lock:
            for record in records:
                if record.record_id in self._records:
                    raise JournalError(
                        f"{path}: record {record.record_id!r} journaled twice",
                        path=path,
                    )
                self._records[record.record_id] = record
                self._index.add(record.record_id, record.description)
                self._uf.add(record.record_id)
                for partner in self._must_by_member.get(record.record_id, ()):
                    if partner in self._records:
                        self._uf.union(record.record_id, partner)
            for a, b in must_pairs:
                self._apply_must_link(a, b)
            for decision in decisions:
                self._decisions.append(decision)
                self._compared.add(decision.key)
                if self.mode == "transitive" and decision.match:
                    self._uf.union(decision.left, decision.right)
            self.engine_calls += len(decisions)
            self.short_circuited += skipped
            self._committed |= committed
        return [
            r for r in (*pending, *records) if r.record_id not in committed
        ]

    def _finish(self, record: Record) -> None:
        """Complete one journaled-but-uncommitted record after recovery.

        The per-record counters restart from the resume point; pairs the
        crashed run short-circuited (never journaled) are re-examined and
        re-skipped here, so the store-level totals still match an
        uninterrupted run's.
        """
        candidates, calls, skipped, _ = self._decide_candidates(record)
        if self._journal is not None:
            self._journal.append(
                {
                    "type": "commit",
                    "record_id": record.record_id,
                    "candidates": candidates,
                    "engine_calls": calls,
                    "short_circuited": skipped,
                }
            )
        with self._lock:
            self._committed.add(record.record_id)

    # --------------------------------------------------------------- read-outs

    def _cluster_of(self, record_id: str) -> tuple[str, ...]:
        """Current cluster members of one record.

        Transitive mode without cannot-links reads the live union-find;
        otherwise the authoritative (constraint-respecting) clustering is
        recomputed from the decision log.
        """
        with self._lock:
            if self.mode == "transitive" and not self.cannot_link:
                return self._uf.component_of(record_id)
        return self.clustering().cluster_of(record_id)

    def _present_constraints(
        self, pairs: tuple[tuple[str, str], ...]
    ) -> tuple[tuple[str, str], ...]:
        """Constraints whose endpoints have both been ingested."""
        with self._lock:
            return tuple(
                (a, b) for a, b in pairs
                if a in self._records and b in self._records
            )

    def clustering(self) -> Clustering:
        """The current entity partition over every ingested record."""
        with self._lock:
            elements = tuple(self._records)
            decisions = tuple(self._decisions)
        must = self._present_constraints(self.must_link)
        cannot = self._present_constraints(self.cannot_link)
        if self.mode == "transitive":
            return transitive_closure(
                elements, decisions, must_link=must, cannot_link=cannot
            )
        return correlation_cluster(
            elements, decisions, must_link=must, cannot_link=cannot,
            min_agreement=self.min_agreement,
        )

    def golden_records(self) -> dict[str, Record]:
        """Cluster id → golden record for the current partition."""
        clustering = self.clustering()
        with self._lock:
            records = dict(self._records)
        return golden_records(clustering, records)

    def decisions(self) -> tuple[PairDecision, ...]:
        """Every engine decision so far, in canonical sorted order."""
        with self._lock:
            return tuple(sorted(self._decisions, key=lambda d: (d.key, d.source)))

    def decision_log(self) -> tuple[PairDecision, ...]:
        """Every engine decision so far, in append (journal) order.

        The log order is itself deterministic for a given journal, and
        skipping the canonical sort makes this the cheap accessor for
        bulk consumers (sharded re-drain walks every shard's history).
        """
        with self._lock:
            return tuple(self._decisions)

    def records(self) -> tuple[Record, ...]:
        """Ingested records, sorted by record id."""
        with self._lock:
            return tuple(
                self._records[record_id] for record_id in sorted(self._records)
            )
