"""Incremental entity resolution: stream records into live clusters.

:class:`ResolutionStore` is the online counterpart of the batch
pipeline: records arrive one at a time, each is blocked against the
records already ingested through a pluggable
:class:`~repro.index.protocol.CandidateIndex` (shared-token inverted
index by default, MinHash/LSH via
:class:`repro.index.MinHashCandidateIndex`), the surviving candidate
pairs are decided by the :class:`~repro.engine.MatchingEngine` in
micro-batched chunks, and the cluster structure updates in place.

**Order invariance (transitive mode).**  The candidate predicate is a
symmetric function of the two records alone (share ≥ ``min_shared``
tokens, or band collision plus a similarity floor), so over a full
ingestion the set of candidate edges is the same for every insertion
order; the engine's decision for a pair is a
deterministic function of the pair; and connected components are a
function of the positive-edge *set*.  Cluster-aware short-circuiting
preserves this: a pair is only skipped when its endpoints are already
connected, and for transitive closure such a decision cannot change the
partition (a positive union would be a no-op, a negative is ignored) —
so every insertion order, with or without short-circuiting, yields the
same clustering as one batch run.  Correlation mode aggregates *all*
decisions as evidence, so there short-circuiting is disabled and the
clustering is recomputed from the full (sorted) decision log.

**Thread safety.**  One lock guards the record table, candidate index,
union-find, and decision log (``@guarded_by`` declarations below,
enforced by ``repro-em lint --deep``).  Engine dispatch — the only
blocking work — always happens outside the lock: ``ingest`` snapshots
candidates under the lock, decides them unlocked, applies the verdicts
under the lock, and loops until no undecided candidate remains, so
records ingested concurrently by other threads are still compared.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Annotated, Iterable, Sequence

from repro.blocking.token import blocking_tokens
from repro.concurrency import guarded_by, idempotent
from repro.datasets.schema import Record
from repro.engine.engine import MatchingEngine, MatchResult
from repro.index.protocol import CandidateIndex
from repro.resolve.canonical import golden_records
from repro.resolve.clusterer import (
    Clustering,
    PairDecision,
    correlation_cluster,
    transitive_closure,
)
from repro.resolve.uf import UnionFind

__all__ = ["IngestResult", "ResolutionStore", "TokenCandidateIndex", "decision_score"]

#: evidence weight per decision source: degraded fallback answers count
#: half — the threshold matcher is the engine's emergency path, not the
#: model (see DESIGN.md §9), so its verdicts should not veto or force
#: merges as strongly as real completions.
_SOURCE_SCORES = {"backend": 1.0, "cache": 1.0, "fallback": 0.5}


def decision_score(result: MatchResult) -> float:
    """Evidence weight of one engine answer (keyed on its source)."""
    return _SOURCE_SCORES.get(result.source, 1.0)


def _normalize_source(source: str) -> str:
    """Collapse ``cache`` answers to ``backend`` in the decision log.

    A cache hit *is* a backend answer (same completion, same decision) —
    it only reached this store through the engine's memo table.  Folding
    the two keeps a journaled run byte-identical whether it was
    interrupted or not: a resumed run starts with a cold cache, so the
    same logical answer may arrive via either source.
    """
    return "backend" if source == "cache" else source


class TokenCandidateIndex(CandidateIndex):
    """Inverted index serving a *pairwise* shared-token candidate predicate.

    Two records are candidates when their descriptions share at least
    ``min_shared`` distinct blocking tokens.  The predicate depends only
    on the two records — no collection-level frequency pruning — which is
    what makes the incremental candidate edge set insertion-order-
    invariant.  The index is not locked: :class:`ResolutionStore` guards
    it.  The MinHash/LSH counterpart with the same contract is
    :class:`repro.index.MinHashCandidateIndex`.
    """

    def __init__(self, min_shared: int = 1) -> None:
        if min_shared <= 0:
            raise ValueError("min_shared must be positive")
        self.min_shared = min_shared
        self._postings: dict[str, list[str]] = {}

    def add(self, record_id: str, description: str) -> None:
        """Index one record's description tokens."""
        for token in sorted(set(blocking_tokens(description))):
            self._postings.setdefault(token, []).append(record_id)

    def candidates(self, description: str, exclude: str | None = None) -> tuple[str, ...]:
        """Sorted ids of indexed records sharing ≥ ``min_shared`` tokens."""
        shared: dict[str, int] = {}
        for token in sorted(set(blocking_tokens(description))):
            for record_id in self._postings.get(token, ()):
                shared[record_id] = shared.get(record_id, 0) + 1
        return tuple(
            sorted(
                record_id
                for record_id, count in shared.items()
                if count >= self.min_shared and record_id != exclude
            )
        )


@dataclass(frozen=True)
class IngestResult:
    """What one ``ingest`` call did."""

    record_id: str
    #: candidate records the blocker surfaced for this record.
    candidates: int
    #: engine decisions actually requested.
    engine_calls: int
    #: candidate pairs skipped because their endpoints were co-clustered.
    short_circuited: int
    #: canonical id of the cluster the record landed in.
    cluster_id: str
    #: size of that cluster after the update.
    cluster_size: int


class ResolutionStore:
    """Live entity-resolution state: records in, clusters out."""

    #: engine dispatch happens outside the store lock (blocking work).
    engine: MatchingEngine
    _records: Annotated["dict[str, Record]", guarded_by("_lock")]
    _index: Annotated[CandidateIndex, guarded_by("_lock")]
    _uf: Annotated[UnionFind, guarded_by("_lock")]
    _decisions: Annotated["list[PairDecision]", guarded_by("_lock")]
    _compared: Annotated["set[tuple[str, str]]", guarded_by("_lock")]
    engine_calls: Annotated[int, guarded_by("_lock")]
    short_circuited: Annotated[int, guarded_by("_lock")]

    def __init__(
        self,
        engine: MatchingEngine,
        mode: str = "transitive",
        min_shared: int = 1,
        min_agreement: float = 0.5,
        chunk_size: int = 32,
        short_circuit: bool = True,
        must_link: Iterable[tuple[str, str]] = (),
        cannot_link: Iterable[tuple[str, str]] = (),
        journal: str | Path | None = None,
        index: CandidateIndex | None = None,
        _recovering: bool = False,
    ) -> None:
        if mode not in ("transitive", "correlation"):
            raise ValueError(f"unknown resolution mode {mode!r}")
        if chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        self.engine = engine
        self.mode = mode
        self.min_agreement = min_agreement
        self.chunk_size = chunk_size
        #: skipping is only sound for transitive closure without
        #: cannot-links (see module docstring).
        self.short_circuit = (
            short_circuit and mode == "transitive" and not tuple(cannot_link)
        )
        self.must_link = tuple(sorted({tuple(sorted(p)) for p in must_link}))
        self.cannot_link = tuple(sorted({tuple(sorted(p)) for p in cannot_link}))
        self._lock = threading.RLock()
        self._records = {}
        #: blocking-strategy injection point: any CandidateIndex whose
        #: predicate is a symmetric function of the two records alone
        #: preserves the store's insertion-order invariance (see the
        #: module docstring); ``min_shared`` configures the default
        #: token index only.
        self._index = (
            index if index is not None
            else TokenCandidateIndex(min_shared=min_shared)
        )
        self._uf = UnionFind()
        self._decisions = []
        self._compared = set()
        self.engine_calls = 0
        self.short_circuited = 0
        self._journal = None
        if journal is not None:
            from repro.faults.journal import JournalWriter

            path = Path(journal)
            if not _recovering and path.exists() and path.stat().st_size:
                raise ValueError(
                    f"journal {path} already has entries; resume it with "
                    f"ResolutionStore.recover() instead"
                )
            self._journal = JournalWriter(
                path, header={"kind": "resolve", "mode": mode}
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def __contains__(self, record_id: str) -> bool:
        with self._lock:
            return record_id in self._records

    @idempotent
    def close(self) -> None:
        """Release the write-ahead journal handle.

        Idempotent and thread-safe; a store built without a journal is a
        no-op.  The store itself stays readable after close — only
        further journaled ingestion is cut off (by the closed handle).
        """
        with self._lock:
            if self._journal is not None:
                self._journal.close()
                self._journal = None

    def __enter__(self) -> "ResolutionStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -------------------------------------------------------------- ingestion

    def ingest(self, record: Record) -> IngestResult:
        """Add one record: block → decide → update clusters.

        Safe to call from multiple threads; the engine call runs outside
        the store lock, and the snapshot/apply loop re-checks for records
        that arrived while it was deciding.
        """
        with self._lock:
            if record.record_id in self._records:
                raise ValueError(
                    f"record {record.record_id!r} already ingested"
                )
            self._records[record.record_id] = record
            self._index.add(record.record_id, record.description)
            self._uf.add(record.record_id)
            for a, b in self.must_link:
                if a in self._records and b in self._records:
                    self._uf.union(a, b)
        if self._journal is not None:
            # Write-ahead: the record is acknowledged before any of its
            # comparisons run, so a crash mid-comparison leaves it
            # journaled-but-uncommitted and ``recover`` finishes it.
            self._journal.append(
                {
                    "type": "record",
                    "record_id": record.record_id,
                    "description": record.description,
                    "attributes": dict(record.attributes),
                }
            )
        candidates, calls, skipped = self._decide_candidates(record)
        if self._journal is not None:
            self._journal.append(
                {
                    "type": "commit",
                    "record_id": record.record_id,
                    "candidates": candidates,
                    "engine_calls": calls,
                    "short_circuited": skipped,
                }
            )
        cluster = self._cluster_of(record.record_id)
        return IngestResult(
            record_id=record.record_id,
            candidates=candidates,
            engine_calls=calls,
            short_circuited=skipped,
            cluster_id=cluster[0],
            cluster_size=len(cluster),
        )

    def _decide_candidates(self, record: Record) -> tuple[int, int, int]:
        """Block *record* and decide its pending pairs until none remain.

        Returns ``(candidates, engine_calls, short_circuited)`` for this
        record.  Shared by :meth:`ingest` and crash recovery: pairs whose
        decisions are already journaled sit in ``_compared`` and are never
        re-asked, so finishing an uncommitted record after a crash decides
        exactly the pairs the interrupted run had not yet acknowledged.
        """
        candidates = 0
        calls = 0
        skipped = 0
        while True:
            with self._lock:
                #: (other id, prompt-left desc, prompt-right desc) —
                #: descriptions are ordered by the canonical (sorted) pair,
                #: NOT by arrival: the model's answer is not symmetric in
                #: its arguments, so a fixed orientation is what keeps the
                #: decision (and thus the clustering) insertion-order-free.
                todo: list[tuple[str, str, str]] = []
                for other in self._index.candidates(
                    record.description, exclude=record.record_id
                ):
                    pair = tuple(sorted((record.record_id, other)))
                    if pair in self._compared:
                        continue
                    self._compared.add(pair)
                    candidates += 1
                    if self.short_circuit and self._uf.connected(
                        record.record_id, other
                    ):
                        skipped += 1
                        self.short_circuited += 1
                        continue
                    first, second = pair
                    todo.append((
                        other,
                        self._records[first].description,
                        self._records[second].description,
                    ))
                    if len(todo) >= self.chunk_size:
                        break
            if not todo:
                break
            results = self.engine.match_pairs(
                [(left, right) for _, left, right in todo]
            )
            calls += len(results)
            decided: list[tuple[str, PairDecision]] = []
            for (other, _, _), result in zip(todo, results):
                first, second = sorted((record.record_id, other))
                decided.append(
                    (
                        other,
                        PairDecision(
                            left=first,
                            right=second,
                            match=result.decision,
                            score=decision_score(result),
                            source=_normalize_source(result.source),
                        ),
                    )
                )
            if self._journal is not None:
                # Journal (and fsync) the chunk before applying it: once a
                # decision is visible in memory it must survive a crash.
                for _, decision in decided:
                    self._journal.append(
                        {
                            "type": "decision",
                            "left": decision.left,
                            "right": decision.right,
                            "match": decision.match,
                            "score": decision.score,
                            "source": decision.source,
                        }
                    )
            with self._lock:
                self.engine_calls += len(results)
                for other, decision in decided:
                    self._decisions.append(decision)
                    if self.mode == "transitive" and decision.match:
                        self._uf.union(record.record_id, other)
        return candidates, calls, skipped

    def ingest_all(self, records: Sequence[Record]) -> list[IngestResult]:
        """Ingest records in order (a convenience over repeated ``ingest``)."""
        return [self.ingest(record) for record in records]

    # --------------------------------------------------------------- recovery

    @classmethod
    def recover(
        cls,
        path: str | Path,
        engine: MatchingEngine,
        **kwargs: object,
    ) -> "ResolutionStore":
        """Rebuild a journaled store after a crash and finish in-flight work.

        Replays every acknowledged record and decision from the journal at
        *path* (dropping a torn final line and truncating it from the
        file), re-derives the union-find / candidate index / compared-pair
        state, then re-runs the comparison loop for any record whose
        ``commit`` entry never made it to disk.  Journaled pairs are never
        re-asked, so the recovered store — and the continued run — is
        byte-identical to one that was never interrupted (decision sources
        are cache-normalized for exactly this reason).  The returned store
        keeps journaling to the same file.
        """
        from repro.faults.journal import read_journal, repair

        path = Path(path)
        mode = str(kwargs.get("mode", "transitive"))
        entries, _ = read_journal(path, expect={"kind": "resolve", "mode": mode})
        repair(path)
        store = cls(engine, journal=path, _recovering=True, **kwargs)  # type: ignore[arg-type]
        try:
            pending = store._replay(path, entries)
            for record in pending:
                store._finish(record)
        except BaseException:
            store.close()
            raise
        return store

    def _replay(self, path: Path, entries: list[dict]) -> list[Record]:
        """Apply journal *entries*; returns uncommitted records, in order."""
        from repro.faults.journal import JournalError

        records: list[Record] = []
        committed: set[str] = set()
        decisions: list[PairDecision] = []
        skipped = 0
        for entry in entries:
            kind = entry.get("type")
            if kind == "record":
                records.append(
                    Record(
                        record_id=str(entry["record_id"]),
                        attributes=dict(entry.get("attributes") or {}),
                        description=str(entry["description"]),
                    )
                )
            elif kind == "decision":
                decisions.append(
                    PairDecision(
                        left=str(entry["left"]),
                        right=str(entry["right"]),
                        match=bool(entry["match"]),
                        score=float(entry["score"]),
                        source=str(entry["source"]),
                    )
                )
            elif kind == "commit":
                committed.add(str(entry["record_id"]))
                skipped += int(entry.get("short_circuited", 0))
            else:
                raise JournalError(
                    f"{path}: unknown journal entry type {kind!r}"
                )
        with self._lock:
            for record in records:
                if record.record_id in self._records:
                    raise JournalError(
                        f"{path}: record {record.record_id!r} journaled twice"
                    )
                self._records[record.record_id] = record
                self._index.add(record.record_id, record.description)
                self._uf.add(record.record_id)
            for a, b in self.must_link:
                if a in self._records and b in self._records:
                    self._uf.union(a, b)
            for decision in decisions:
                self._decisions.append(decision)
                self._compared.add(decision.key)
                if self.mode == "transitive" and decision.match:
                    self._uf.union(decision.left, decision.right)
            self.engine_calls = len(decisions)
            self.short_circuited = skipped
        return [r for r in records if r.record_id not in committed]

    def _finish(self, record: Record) -> None:
        """Complete one journaled-but-uncommitted record after recovery.

        The per-record counters restart from the resume point; pairs the
        crashed run short-circuited (never journaled) are re-examined and
        re-skipped here, so the store-level totals still match an
        uninterrupted run's.
        """
        candidates, calls, skipped = self._decide_candidates(record)
        if self._journal is not None:
            self._journal.append(
                {
                    "type": "commit",
                    "record_id": record.record_id,
                    "candidates": candidates,
                    "engine_calls": calls,
                    "short_circuited": skipped,
                }
            )

    # --------------------------------------------------------------- read-outs

    def _cluster_of(self, record_id: str) -> tuple[str, ...]:
        """Current cluster members of one record.

        Transitive mode without cannot-links reads the live union-find;
        otherwise the authoritative (constraint-respecting) clustering is
        recomputed from the decision log.
        """
        with self._lock:
            if self.mode == "transitive" and not self.cannot_link:
                return self._uf.component_of(record_id)
        return self.clustering().cluster_of(record_id)

    def _present_constraints(
        self, pairs: tuple[tuple[str, str], ...]
    ) -> tuple[tuple[str, str], ...]:
        """Constraints whose endpoints have both been ingested."""
        with self._lock:
            return tuple(
                (a, b) for a, b in pairs
                if a in self._records and b in self._records
            )

    def clustering(self) -> Clustering:
        """The current entity partition over every ingested record."""
        with self._lock:
            elements = tuple(self._records)
            decisions = tuple(self._decisions)
        must = self._present_constraints(self.must_link)
        cannot = self._present_constraints(self.cannot_link)
        if self.mode == "transitive":
            return transitive_closure(
                elements, decisions, must_link=must, cannot_link=cannot
            )
        return correlation_cluster(
            elements, decisions, must_link=must, cannot_link=cannot,
            min_agreement=self.min_agreement,
        )

    def golden_records(self) -> dict[str, Record]:
        """Cluster id → golden record for the current partition."""
        clustering = self.clustering()
        with self._lock:
            records = dict(self._records)
        return golden_records(clustering, records)

    def decisions(self) -> tuple[PairDecision, ...]:
        """Every engine decision so far, in canonical sorted order."""
        with self._lock:
            return tuple(sorted(self._decisions, key=lambda d: (d.key, d.source)))

    def records(self) -> tuple[Record, ...]:
        """Ingested records, sorted by record id."""
        with self._lock:
            return tuple(
                self._records[record_id] for record_id in sorted(self._records)
            )
