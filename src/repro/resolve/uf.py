"""Deterministic union-find (disjoint-set forest) over string keys.

The partition produced by a sequence of ``union`` calls is a pure
function of the *set* of (element, element) edges — union-find semantics
guarantee that connected components do not depend on the order unions
arrive in.  The public ids are made insertion-order-independent too:
a component's id is its lexicographically smallest member, so two stores
that ingested the same records in different orders report identical
cluster ids.  Internal parent pointers *do* depend on call order (rank
unions + path compression), which is why no public method ever exposes a
raw root: everything is keyed on the canonical min-member id.
"""

from __future__ import annotations

from typing import Iterable, Iterator

__all__ = ["UnionFind"]


class UnionFind:
    """Disjoint sets of string elements with stable, deterministic ids."""

    def __init__(self, elements: Iterable[str] = ()) -> None:
        self._parent: dict[str, str] = {}
        self._rank: dict[str, int] = {}
        #: root → lexicographically smallest member of its component.
        self._min_member: dict[str, str] = {}
        for element in elements:
            self.add(element)

    # ------------------------------------------------------------ membership

    def add(self, element: str) -> bool:
        """Register *element* as a singleton; False if already present."""
        if element in self._parent:
            return False
        self._parent[element] = element
        self._rank[element] = 0
        self._min_member[element] = element
        return True

    def __contains__(self, element: str) -> bool:
        return element in self._parent

    def __len__(self) -> int:
        return len(self._parent)

    def __iter__(self) -> Iterator[str]:
        return iter(self._parent)

    # ------------------------------------------------------------- structure

    def _find_root(self, element: str) -> str:
        """Root of *element*'s tree, with two-pass path compression."""
        try:
            node = self._parent[element]
        except KeyError:
            raise KeyError(f"unknown element {element!r}") from None
        root = element
        while self._parent[root] != root:
            root = self._parent[root]
        node = element
        while self._parent[node] != root:
            self._parent[node], node = root, self._parent[node]
        return root

    def find(self, element: str) -> str:
        """Canonical component id: the smallest member of the component.

        Unlike a raw root, this id does not depend on the order elements
        were added or unions were applied.
        """
        return self._min_member[self._find_root(element)]

    def union(self, a: str, b: str) -> bool:
        """Merge the components of *a* and *b*; False if already merged.

        Unknown elements are added first, so a decision stream can be
        replayed without pre-registering its endpoints.
        """
        self.add(a)
        self.add(b)
        root_a = self._find_root(a)
        root_b = self._find_root(b)
        if root_a == root_b:
            return False
        # Union by rank; equal ranks break ties on the min-member id so
        # the tree shape is deterministic for a fixed call sequence.
        if self._rank[root_a] < self._rank[root_b]:
            root_a, root_b = root_b, root_a
        elif self._rank[root_a] == self._rank[root_b]:
            if self._min_member[root_b] < self._min_member[root_a]:
                root_a, root_b = root_b, root_a
            self._rank[root_a] += 1
        self._parent[root_b] = root_a
        self._min_member[root_a] = min(
            self._min_member[root_a], self._min_member.pop(root_b)
        )
        return True

    def connected(self, a: str, b: str) -> bool:
        """True when *a* and *b* are in the same component."""
        return self._find_root(a) == self._find_root(b)

    # ------------------------------------------------------------- read-outs

    def components(self) -> tuple[tuple[str, ...], ...]:
        """All components, members sorted, components sorted by their id."""
        groups: dict[str, list[str]] = {}
        for element in self._parent:
            groups.setdefault(self._find_root(element), []).append(element)
        return tuple(
            sorted(
                (tuple(sorted(members)) for members in groups.values()),
                key=lambda component: component[0],
            )
        )

    def component_of(self, element: str) -> tuple[str, ...]:
        """Sorted members of *element*'s component."""
        root = self._find_root(element)
        return tuple(
            sorted(e for e in self._parent if self._find_root(e) == root)
        )

    def component_ids(self) -> dict[str, str]:
        """Every element → its canonical (min-member) component id."""
        return {element: self.find(element) for element in self._parent}

    # ----------------------------------------------------------- persistence

    def snapshot_state(self) -> list[list[str]]:
        """Canonical JSON-safe dump: components as sorted member lists.

        The dump is a pure function of the partition (not of the union
        call order), so two stores holding the same components serialize
        identically.
        """
        return [list(component) for component in self.components()]

    def restore_state(self, components: Iterable[Iterable[str]]) -> None:
        """Replace the partition with a :meth:`snapshot_state` dump.

        The restored forest is flat — every member points directly at
        the component's canonical (min-member) id — which reproduces the
        partition and every public read-out in O(elements) without
        replaying a single union.  Internal tree shape differs from the
        forest that produced the dump, but tree shape was never
        observable through the public surface.
        """
        self._parent.clear()
        self._rank.clear()
        self._min_member.clear()
        for members in components:
            group = [str(member) for member in members]
            if not group:
                continue
            cid = min(group)
            for member in group:
                self._parent[member] = cid
                self._rank[member] = 0
            self._rank[cid] = 1 if len(group) > 1 else 0
            self._min_member[cid] = cid

    def copy(self) -> "UnionFind":
        """Independent copy (components and determinism preserved)."""
        clone = UnionFind()
        clone._parent = dict(self._parent)
        clone._rank = dict(self._rank)
        clone._min_member = dict(self._min_member)
        return clone
