"""Batch resolution: BlockingResult candidates → engine → clusters.

The feeding edge is the same sorted candidate walk as
:meth:`~repro.engine.MatchingEngine.match_blocking`; here candidates are
dispatched in micro-chunks so that, in transitive mode, pairs whose
endpoints are *already* co-clustered by earlier decisions can be skipped
before they cost an engine call.  Skipping is sound for transitive
closure — an already-connected pair cannot change the partition — so the
short-circuited run is clustering-identical to the exhaustive one while
issuing strictly fewer backend requests (the saving is reported by
``benchmarks/bench_resolve.py``).

Record ids from the two blocking sides are namespaced as ``L:<id>`` /
``R:<id>`` so a record id reused across sides never aliases.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.blocking.base import BlockingResult
from repro.datasets.schema import Record, Split
from repro.engine.engine import MatchingEngine
from repro.resolve.canonical import golden_records
from repro.resolve.clusterer import (
    Clustering,
    PairDecision,
    correlation_cluster,
    transitive_closure,
)
from repro.resolve.incremental import decision_score
from repro.resolve.uf import UnionFind

__all__ = [
    "ResolutionReport",
    "gold_clustering",
    "node_id",
    "resolve_blocking",
    "split_records",
]


def node_id(side: str, record: Record) -> str:
    """Namespaced element id for a record of blocking side ``L`` / ``R``."""
    return f"{side}:{record.record_id}"


@dataclass(frozen=True)
class ResolutionReport:
    """Everything one batch resolution run produced."""

    clustering: Clustering
    decisions: tuple[PairDecision, ...]
    #: blocker candidate pairs considered.
    candidates: int
    #: candidate pairs actually sent to the engine.
    engine_calls: int
    #: candidate pairs skipped because their endpoints were co-clustered.
    short_circuited: int
    #: cluster id → golden record.
    golden: dict[str, Record]

    def as_dict(self) -> dict[str, object]:
        """JSON-serializable summary (cluster content, not scores)."""
        return {
            "records": len(self.clustering.elements),
            "clusters": len(self.clustering),
            "cluster_sizes": {
                str(size): count
                for size, count in self.clustering.size_histogram().items()
            },
            "candidates": self.candidates,
            "engine_calls": self.engine_calls,
            "short_circuited": self.short_circuited,
            "matches": sum(1 for d in self.decisions if d.match),
        }


def resolve_blocking(
    engine: MatchingEngine,
    blocking: BlockingResult,
    mode: str = "transitive",
    min_agreement: float = 0.5,
    chunk_size: int = 32,
    short_circuit: bool = True,
    must_link: Iterable[tuple[str, str]] = (),
    cannot_link: Iterable[tuple[str, str]] = (),
) -> ResolutionReport:
    """Resolve a blocker's candidate stream into entity clusters.

    Candidates are decided in sorted (left_index, right_index) order —
    the exact order :meth:`MatchingEngine.match_blocking` uses — so with
    ``short_circuit=False`` the engine sees a pair-for-pair identical
    workload.  The final clustering is rebuilt from the collected
    decisions via :func:`transitive_closure` / :func:`correlation_cluster`,
    so the on-line union-find here is *only* a short-circuiting aid.
    """
    if mode not in ("transitive", "correlation"):
        raise ValueError(f"unknown resolution mode {mode!r}")
    must = tuple(sorted({tuple(sorted(p)) for p in must_link}))
    cannot = tuple(sorted({tuple(sorted(p)) for p in cannot_link}))
    elements: list[str] = []
    records: dict[str, Record] = {}
    for side, side_records in (("L", blocking.left), ("R", blocking.right)):
        for record in side_records:
            element = node_id(side, record)
            if element in records:
                raise ValueError(
                    f"duplicate record id {record.record_id!r} on side {side}"
                )
            records[element] = record
            elements.append(element)

    #: skipping is only sound for plain transitive closure.
    skipping = short_circuit and mode == "transitive" and not cannot
    online = UnionFind(elements)
    for a, b in must:
        online.union(a, b)

    decisions: list[PairDecision] = []
    engine_calls = 0
    short_circuited = 0
    pending: list[tuple[str, str]] = []

    def flush() -> None:
        nonlocal engine_calls
        if not pending:
            return
        results = engine.match_pairs(
            [
                (records[a].description, records[b].description)
                for a, b in pending
            ]
        )
        engine_calls += len(results)
        for (a, b), result in zip(pending, results):
            decisions.append(
                PairDecision(
                    left=a,
                    right=b,
                    match=result.decision,
                    score=decision_score(result),
                    source=result.source,
                )
            )
            if result.decision:
                online.union(a, b)
        pending.clear()

    for i, j in sorted(blocking.candidates):
        left = node_id("L", blocking.left[i])
        right = node_id("R", blocking.right[j])
        if skipping and online.connected(left, right):
            short_circuited += 1
            continue
        pending.append((left, right))
        if len(pending) >= chunk_size:
            flush()
    flush()

    if mode == "transitive":
        clustering = transitive_closure(
            elements, decisions, must_link=must, cannot_link=cannot
        )
    else:
        clustering = correlation_cluster(
            elements, decisions, must_link=must, cannot_link=cannot,
            min_agreement=min_agreement,
        )
    return ResolutionReport(
        clustering=clustering,
        decisions=tuple(sorted(decisions, key=lambda d: (d.key, d.source))),
        candidates=len(blocking.candidates),
        engine_calls=engine_calls,
        short_circuited=short_circuited,
        golden=golden_records(clustering, records),
    )


# -------------------------------------------------- dedup splits as workloads


def split_records(split: Split) -> tuple[list[Record], list[Record]]:
    """The left/right record collections of a labelled split, deduplicated.

    Records are deduplicated by record id (first occurrence wins) so a
    split where one record participates in many pairs yields each record
    once per side — the dedup workload a blocker expects.
    """
    left: dict[str, Record] = {}
    right: dict[str, Record] = {}
    for pair in split.pairs:
        left.setdefault(pair.left.record_id, pair.left)
        right.setdefault(pair.right.record_id, pair.right)
    return list(left.values()), list(right.values())


def gold_clustering(split: Split) -> Clustering:
    """Ground-truth entity partition implied by a split's pair labels.

    Positive pairs are must-links; the gold clusters are their transitive
    closure over every record appearing in the split (records in no
    positive pair stay singletons).  Element ids use the same ``L:`` /
    ``R:`` namespacing as :func:`resolve_blocking`, so gold and predicted
    partitions cover identical element sets.
    """
    uf = UnionFind()
    for pair in split.pairs:
        left = f"L:{pair.left.record_id}"
        right = f"R:{pair.right.record_id}"
        uf.add(left)
        uf.add(right)
        if pair.label:
            uf.union(left, right)
    return Clustering.from_union_find(uf)
