"""Entity resolution: pairwise match decisions → entity clusters.

The paper — and the engine built in earlier PRs — stops at independent
pairwise decisions.  A deployed pipeline must turn those decisions into
*entities*: deduplicated clusters that stay consistent as records stream
in.  This package closes that gap:

* :mod:`~repro.resolve.uf` — deterministic union-find with stable,
  insertion-order-independent cluster ids;
* :mod:`~repro.resolve.clusterer` — transitive-closure baseline plus a
  correlation-clustering mode that uses engine confidence to veto
  low-agreement merges, both honouring must-link / cannot-link
  constraints;
* :mod:`~repro.resolve.incremental` — :class:`ResolutionStore`, a
  thread-safe store that ingests records one at a time (blocker
  candidates → micro-batched engine decisions → cluster update) and is
  order-invariant for transitive closure;
* :mod:`~repro.resolve.snapshot` — the snapshot/compaction format that
  turns journal recovery from O(history) into O(live state);
* :mod:`~repro.resolve.sharded` — :class:`ShardedResolutionStore`,
  K independent journal-backed shards (replication on blocking keys,
  cross-shard merge queue, parallel recovery) producing a clustering
  byte-identical to one shard's;
* :mod:`~repro.resolve.canonical` — golden-record selection per cluster
  via deterministic attribute voting;
* :mod:`~repro.resolve.metrics` — cluster-level evaluation (B³, ARI,
  pairwise F1 from clusters) that reconciles with
  :func:`repro.eval.metrics.f1_score`;
* :mod:`~repro.resolve.pipeline` — the batch edge from a
  :class:`~repro.blocking.base.BlockingResult` through the engine to a
  :class:`ResolutionReport`, with cluster-aware short-circuiting.

The CLI front door is ``repro-em resolve`` (see README).
"""

from repro.resolve.canonical import golden_record, golden_records
from repro.resolve.clusterer import (
    Clustering,
    PairDecision,
    ResolutionError,
    correlation_cluster,
    transitive_closure,
)
from repro.resolve.incremental import (
    IngestResult,
    ResolutionStore,
    TokenCandidateIndex,
    decision_score,
)
from repro.resolve.metrics import (
    ClusterScores,
    adjusted_rand_index,
    b_cubed,
    cluster_scores,
    pairwise_scores,
)
from repro.resolve.sharded import (
    MergeQueue,
    ShardedIngestResult,
    ShardedResolutionStore,
    shard_journal_path,
)
from repro.resolve.snapshot import (
    SNAPSHOT_VERSION,
    load_snapshot,
    snapshot_path_for,
    write_snapshot_doc,
)
from repro.resolve.pipeline import (
    ResolutionReport,
    gold_clustering,
    node_id,
    resolve_blocking,
    split_records,
)
from repro.resolve.uf import UnionFind

__all__ = [
    "Clustering",
    "ClusterScores",
    "IngestResult",
    "MergeQueue",
    "PairDecision",
    "ResolutionError",
    "ResolutionReport",
    "ResolutionStore",
    "SNAPSHOT_VERSION",
    "ShardedIngestResult",
    "ShardedResolutionStore",
    "TokenCandidateIndex",
    "UnionFind",
    "adjusted_rand_index",
    "b_cubed",
    "cluster_scores",
    "correlation_cluster",
    "decision_score",
    "gold_clustering",
    "golden_record",
    "golden_records",
    "load_snapshot",
    "node_id",
    "pairwise_scores",
    "resolve_blocking",
    "shard_journal_path",
    "snapshot_path_for",
    "split_records",
    "transitive_closure",
    "write_snapshot_doc",
]
