"""Snapshot/compaction format for journal-backed resolution stores.

A journal replays *history*; a snapshot checkpoints *live state*.  The
two compose: a snapshot taken at journal sequence ``seq`` captures the
exact effect of journal entries ``[0, seq)`` — records, decisions,
constraints, counters, and (optionally) serialized candidate-index
state — so recovery loads the snapshot and replays only the journal
suffix past ``seq``.  :meth:`~repro.resolve.incremental.ResolutionStore
.compact` then swaps the journal for a fresh file whose header carries
``"basis": seq``, so the on-disk journal itself stays O(suffix): the
recovery path never touches retired history again.

Format (one JSON document, written atomically — temp file, fsync,
rename, directory fsync — so a crash mid-write leaves the previous
snapshot intact)::

    {"kind": "resolve-snapshot", "version": 1, "mode": "transitive",
     "seq": 1234,
     "records": [{"record_id": ..., "description": ..., "attributes":
                  ..., "committed": true}, ...],      # insertion order
     "decisions": [{"left": ..., "right": ..., "match": ..., "score":
                    ..., "source": ...}, ...],         # log order
     "must_link": [["a", "b"], ...],                   # full current set
     "cannot_link": [["a", "b"], ...],
     "engine_calls": 57, "short_circuited": 3,
     "index": {"class": "TokenCandidateIndex", "state": {...} | null}}

Candidate indexes may implement ``snapshot_state() -> dict`` /
``restore_state(state)`` (both :class:`~repro.resolve.incremental
.TokenCandidateIndex` and :class:`~repro.index.MinHashCandidateIndex`
do); an index without them is rebuilt by re-adding every record in
insertion order, which is correct but pays tokenization/hashing again.

Consistency: a snapshot may only be taken of a *quiescent* store (no
ingest in flight) — the store enforces this — because ``seq`` must name
a prefix whose effects are exactly the captured state.  Mid-ingest, a
record can be journaled but not yet decided, which is representable
(``committed: false``) — but a decision could be applied in memory and
not yet journaled, which is not.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

__all__ = [
    "SNAPSHOT_VERSION",
    "load_snapshot",
    "snapshot_path_for",
    "write_snapshot_doc",
]

SNAPSHOT_VERSION = 1


def snapshot_path_for(journal_path: str | Path) -> Path:
    """Canonical sibling path a journal's snapshot lives at."""
    journal_path = Path(journal_path)
    return journal_path.with_name(journal_path.name + ".snapshot")


def write_snapshot_doc(path: str | Path, doc: dict) -> Path:
    """Atomically persist one snapshot document.

    Write-to-temp + fsync + rename + directory fsync: at every instant
    the snapshot path either holds the previous complete snapshot or the
    new one, never a torn mix — so snapshot writing needs no repair
    protocol of its own.
    """
    from repro.faults.journal import fsync_dir

    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    payload = json.dumps(doc, sort_keys=True, ensure_ascii=True)
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(payload + "\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    fsync_dir(path.parent)
    return path


def load_snapshot(path: str | Path, mode: str) -> dict:
    """Parse and validate one snapshot document.

    Raises :class:`~repro.faults.journal.JournalError` (path attached)
    when the document is not a snapshot, has an unsupported version, or
    was taken from a store in a different ``mode`` — the same structured
    failure shape journal header mismatches produce.
    """
    from repro.faults.journal import JournalError

    path = Path(path)
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
        if not isinstance(doc, dict):
            raise ValueError("snapshot is not an object")
    except ValueError:
        raise JournalError(
            f"{path}: snapshot is not a valid JSON document", path=path, lineno=1
        ) from None
    if doc.get("kind") != "resolve-snapshot":
        raise JournalError(
            f"{path}: not a resolution snapshot "
            f"(kind={doc.get('kind')!r})",
            path=path,
            lineno=1,
        )
    version = doc.get("version")
    if version != SNAPSHOT_VERSION:
        raise JournalError(
            f"{path}: unsupported snapshot version {version!r} "
            f"(expected {SNAPSHOT_VERSION})",
            path=path,
            lineno=1,
        )
    if doc.get("mode") != mode:
        raise JournalError(
            f"{path}: snapshot mode {doc.get('mode')!r} does not match the "
            f"recovering store (mode={mode!r})",
            path=path,
            lineno=1,
        )
    seq = doc.get("seq")
    if not isinstance(seq, int) or seq < 0:
        raise JournalError(
            f"{path}: snapshot seq {seq!r} is not a non-negative integer",
            path=path,
            lineno=1,
        )
    return doc
