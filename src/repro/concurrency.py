"""Machine-checkable concurrency annotations.

The lock-discipline analyzer (``repro-em lint --deep``) needs to know
which fields a lock protects.  The convention is declarative: a class
declares each guarded field at class level with :func:`guarded_by` inside
``typing.Annotated``::

    class ResultCache:
        _entries: Annotated[OrderedDict, guarded_by("_lock")]
        evictions: Annotated[int, guarded_by("_lock")]

        def __init__(self) -> None:
            self._lock = threading.RLock()
            ...

The analyzer then enforces, across the whole program:

* every read/write of a guarded field happens inside ``with self._lock``
  (``__init__``/``__post_init__`` are exempt — construction happens-before
  publication);
* no blocking call (sleep, backend I/O, model inference) is made while a
  lock is held;
* the set of "acquire B while holding A" edges is acyclic (no potential
  deadlock ordering).

The annotation is metadata only — it has no runtime effect beyond being
introspectable via ``typing.get_type_hints(..., include_extras=True)``.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["GuardedBy", "guarded_by"]


@dataclass(frozen=True)
class GuardedBy:
    """Marker: the annotated field must only be touched under *lock_attr*."""

    lock_attr: str


def guarded_by(lock_attr: str) -> GuardedBy:
    """Declare that a field is protected by ``self.<lock_attr>``."""
    return GuardedBy(lock_attr)
