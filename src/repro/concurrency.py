"""Machine-checkable concurrency annotations.

The lock-discipline analyzer (``repro-em lint --deep``) needs to know
which fields a lock protects.  The convention is declarative: a class
declares each guarded field at class level with :func:`guarded_by` inside
``typing.Annotated``::

    class ResultCache:
        _entries: Annotated[OrderedDict, guarded_by("_lock")]
        evictions: Annotated[int, guarded_by("_lock")]

        def __init__(self) -> None:
            self._lock = threading.RLock()
            ...

The analyzer then enforces, across the whole program:

* every read/write of a guarded field happens inside ``with self._lock``
  (``__init__``/``__post_init__`` are exempt — construction happens-before
  publication);
* no blocking call (sleep, backend I/O, model inference) is made while a
  lock is held;
* the set of "acquire B while holding A" edges is acyclic (no potential
  deadlock ordering).

The annotation is metadata only — it has no runtime effect beyond being
introspectable via ``typing.get_type_hints(..., include_extras=True)``.

The resource-lifecycle analyzer (``deep-resource-*`` rules) adds two more
declarative conventions:

* :func:`shutdown_order` — a class that owns several resources declares
  the order its release method must tear them down in::

      class Gateway:
          __shutdown_order__ = shutdown_order("_cv", "_threads")

  Read as "drain/notify ``_cv`` before joining ``_threads``"; the
  ``deep-shutdown-order`` rule checks the release events in ``close`` /
  ``shutdown`` / ``stop`` / ``__exit__`` against the declared sequence.

* :func:`idempotent` — decorates a release method that is safe to call
  more than once (it checks its own closed flag); the
  ``deep-resource-double-close`` rule then accepts paths that release
  the same resource twice through it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, TypeVar

__all__ = ["GuardedBy", "ShutdownOrder", "guarded_by", "idempotent", "shutdown_order"]

_F = TypeVar("_F", bound=Callable)


@dataclass(frozen=True)
class GuardedBy:
    """Marker: the annotated field must only be touched under *lock_attr*."""

    lock_attr: str


def guarded_by(lock_attr: str) -> GuardedBy:
    """Declare that a field is protected by ``self.<lock_attr>``."""
    return GuardedBy(lock_attr)


@dataclass(frozen=True)
class ShutdownOrder:
    """Marker: resources in *attrs* must be released in this order."""

    attrs: tuple[str, ...]


def shutdown_order(*attrs: str) -> ShutdownOrder:
    """Declare the teardown sequence of a class's owned resources.

    Assign the result to a class-level ``__shutdown_order__`` attribute;
    the ``deep-shutdown-order`` rule checks every release method against
    it.  Listing an attribute also marks it as *owned*: storing a fresh
    resource there satisfies the leak rule's ownership requirement.
    """
    if not attrs:
        raise ValueError("shutdown_order needs at least one attribute name")
    return ShutdownOrder(tuple(attrs))


def idempotent(fn: _F) -> _F:
    """Mark a release method as safe to call repeatedly (metadata only)."""
    return fn
