"""Shared utilities: stable hashing, seeded RNG derivation, small helpers.

Everything in the library derives randomness from explicit seeds via
:func:`derive_rng` so that every experiment is bit-reproducible across
processes and platforms (Python's built-in ``hash`` is salted per process
and is therefore never used for anything that feeds randomness).
"""

from __future__ import annotations

import hashlib
import re
from typing import Iterable

import numpy as np

__all__ = [
    "stable_hash",
    "stable_unit_floats",
    "derive_rng",
    "derive_seed",
    "tokenize_simple",
    "extract_numbers",
    "clamp",
]

_TOKEN_RE = re.compile(r"[a-z0-9]+(?:[./-][a-z0-9]+)*")
_NUMBER_RE = re.compile(r"\d+(?:\.\d+)?")


def stable_hash(*parts: object) -> int:
    """Return a 64-bit stable hash of the string representations of *parts*.

    Deterministic across processes and platforms (unlike built-in ``hash``).
    """
    digest = hashlib.blake2b(
        "\x1f".join(str(p) for p in parts).encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "little")


def stable_unit_floats(n: int, *parts: object) -> np.ndarray:
    """Return *n* floats in [0, 1) derived deterministically from *parts*."""
    rng = np.random.default_rng(stable_hash(*parts))
    return rng.random(n)


def derive_seed(base_seed: int, *parts: object) -> int:
    """Derive a child seed from *base_seed* and a namespace path."""
    return stable_hash(base_seed, *parts) & 0x7FFFFFFF


def derive_rng(base_seed: int, *parts: object) -> np.random.Generator:
    """Return a generator seeded from *base_seed* namespaced by *parts*.

    Independent namespaces yield statistically independent streams, so code
    that adds a new consumer does not perturb existing ones.
    """
    return np.random.default_rng(derive_seed(base_seed, *parts))


def tokenize_simple(text: str) -> list[str]:
    """Lower-case word/number tokens; joins like ``pg-730`` stay together."""
    return _TOKEN_RE.findall(text.lower())


def extract_numbers(text: str) -> list[str]:
    """All numeric substrings (integers and decimals) in *text*."""
    return _NUMBER_RE.findall(text)


def clamp(value: float, low: float = 0.0, high: float = 1.0) -> float:
    """Clamp *value* into ``[low, high]``."""
    return max(low, min(high, value))


def dedupe_preserving_order(items: Iterable[str]) -> list[str]:
    """Remove duplicates while keeping first-seen order."""
    seen: set[str] = set()
    out: list[str] = []
    for item in items:
        if item not in seen:
            seen.add(item)
            out.append(item)
    return out
