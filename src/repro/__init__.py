"""TailorMatch reproduction: fine-tuning (simulated) LLMs for entity matching.

Reproduces Steiner, Peeters & Bizer, *Fine-tuning Large Language Models for
Entity Matching* — the full pipeline (Figure 1): benchmark datasets,
simulated LLM personas, LoRA fine-tuning, explanation-augmented training
sets (Dimension 1), training-set selection/generation (Dimension 2),
evaluation, transfer-gain analysis and prompt-sensitivity analysis.

Quickstart::

    from repro import TailorMatch

    tm = TailorMatch("llama-3.1-8b")
    tm.match("Jabra EVOLVE 80 MS Stereo", "Jabra Evolve 80 UC stereo")
    tuned = tm.fine_tune("wdc-small", explanations="structured")
    print(tm.evaluate(tuned, "wdc-small").f1)
"""

from repro.core.pipeline import TailorMatch
from repro.datasets import DATASET_NAMES, load_dataset
from repro.eval import evaluate_model, f1_score
from repro.llm import MODEL_NAMES, get_model
from repro.prompts import PROMPTS, get_prompt

__version__ = "1.0.0"

__all__ = [
    "DATASET_NAMES",
    "MODEL_NAMES",
    "PROMPTS",
    "TailorMatch",
    "__version__",
    "evaluate_model",
    "f1_score",
    "get_model",
    "get_prompt",
    "load_dataset",
]
