"""Tables 4 and 5: training-set selection and generation.

Builds every training-set variant of §5 exactly once (module-level cache):

* ``wdc-small`` / ``wdc-medium`` / ``wdc-large`` — size ablation;
* ``wdc-s-filter`` — error-based filtering of WDC small;
* ``wdc-s-filter-rel`` — plus relevancy filtering;
* ``syn`` — WDC small plus generated examples (all three methods);
* ``syn-filter`` — generated examples error-filtered, plus unfiltered
  WDC small (as in the paper);
* ``syn-filter-rel`` — additionally relevancy-filtered;
* ``wdc-s-err-sel`` — the iterative error-based selection loop (Llama only).
"""

from __future__ import annotations

from functools import lru_cache

from repro.core.error_selection import error_based_selection
from repro.core.finetuning import finetune_model, zero_shot_model
from repro.core.generation import generate_examples
from repro.core.selection import error_based_filter, relevancy_filter
from repro.datasets.registry import load_dataset
from repro.datasets.schema import Split
from repro.experiments.table2 import TRAINING_SETS, _f1_row, _gain, column_key

__all__ = [
    "compute_table4",
    "compute_table5",
    "training_set_variants",
    "TABLE5_VARIANTS",
]

#: Table-5 rows per model (the paper stops fine-tuning GPT-4o-mini early).
TABLE5_VARIANTS = {
    "llama-3.1-8b": [
        "wdc-small", "wdc-medium", "wdc-large", "wdc-s-filter",
        "wdc-s-filter-rel", "syn-filter", "syn-filter-rel", "wdc-s-err-sel",
    ],
    "gpt-4o-mini": ["wdc-small", "wdc-s-filter", "syn-filter"],
}


@lru_cache(maxsize=1)
def _generated_pool() -> Split:
    """Generated examples from all three methods over the WDC small seeds."""
    seeds = load_dataset("wdc-small").train
    return Split(name="syn-generated", pairs=generate_examples(seeds))


@lru_cache(maxsize=None)
def training_set_variants(name: str) -> Split:
    """Build one named training-set variant (cached)."""
    wdc_train = load_dataset("wdc-small").train
    if name == "wdc-small":
        return wdc_train
    if name in ("wdc-medium", "wdc-large"):
        return load_dataset(name).train
    if name == "wdc-s-filter":
        return error_based_filter(wdc_train, name="wdc-s-filter")
    if name == "wdc-s-filter-rel":
        return relevancy_filter(
            training_set_variants("wdc-s-filter"), name="wdc-s-filter-rel"
        )
    if name == "syn":
        return wdc_train.extended(_generated_pool().pairs, name="syn")
    if name == "syn-filter":
        filtered = error_based_filter(_generated_pool(), name="syn-filtered-part")
        return wdc_train.extended(filtered.pairs, name="syn-filter")
    if name == "syn-filter-rel":
        filtered = error_based_filter(_generated_pool(), name="syn-filtered-part")
        relevant = relevancy_filter(filtered, name="syn-filter-rel-part")
        return wdc_train.extended(relevant.pairs, name="syn-filter-rel")
    raise ValueError(f"unknown training-set variant {name!r}")


def compute_table4() -> dict[str, tuple[int, int, int]]:
    """Training-set sizes after filtration/generation (Table 4)."""
    sizes: dict[str, tuple[int, int, int]] = {}
    for name, label in [
        ("wdc-small", "WDC-small"),
        ("wdc-s-filter", "WDC-filtered"),
        ("wdc-s-filter-rel", "WDC-filtered-rel"),
        ("syn", "Syn"),
        ("syn-filter", "Syn-filtered"),
        ("syn-filter-rel", "Syn-filtered-rel"),
    ]:
        split = training_set_variants(name)
        stats = split.stats
        sizes[label] = (stats.positives, stats.negatives, stats.total)
    return sizes


def compute_table5(models: list[str] | None = None) -> dict:
    """Run the selection/generation fine-tuning grid (Table 5)."""
    models = models or list(TABLE5_VARIANTS)
    wdc_valid = load_dataset("wdc-small").valid
    rows: dict[tuple[str, str], dict[str, float]] = {}

    for model_name in models:
        rows[(model_name, "zero-shot")] = _f1_row(zero_shot_model(model_name))
        for variant in TABLE5_VARIANTS[model_name]:
            if variant == "wdc-s-err-sel":
                result = error_based_selection(model_name)
                model = result.model
            elif variant in ("wdc-medium", "wdc-large"):
                model = finetune_model(model_name, variant).model
            else:
                model = finetune_model(
                    model_name,
                    training_set_variants(variant),
                    valid=wdc_valid,
                    tag=variant,
                ).model
            rows[(model_name, variant)] = _f1_row(model)

    gains: dict[tuple[str, str], tuple[float | None, float | None]] = {}
    for model_name in models:
        zero = rows[(model_name, "zero-shot")]
        specialized = {
            column_key(t): _f1_row(finetune_model(model_name, t).model)
            for t in TRAINING_SETS[model_name]
        }
        for variant in TABLE5_VARIANTS[model_name]:
            row = rows[(model_name, variant)]
            gains[(model_name, variant)] = (
                _gain(row, zero, specialized, "product", "wdc-small"),
                _gain(row, zero, specialized, "scholar", "wdc-small"),
            )
    return {"rows": rows, "gains": gains}
