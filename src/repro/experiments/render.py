"""Rendering experiment results in the paper's table style.

Every cell shows the reproduction's F1 with the delta to the row's
reference (zero-shot or fine-tuned baseline, per table); when the paper
reported the same cell, it is printed underneath for comparison.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.eval.reports import format_delta, format_percent

__all__ = ["render_results_table", "render_size_table"]


def render_results_table(
    title: str,
    columns: Sequence[str],
    rows: Mapping[tuple[str, str], Mapping[str, float]],
    gains: Mapping[tuple[str, str], tuple[float | None, float | None]] | None = None,
    paper_rows: Mapping[tuple[str, str], Mapping[str, float]] | None = None,
    paper_gains: Mapping[tuple[str, str], tuple[float, float]] | None = None,
    reference_key: str = "zero-shot",
) -> str:
    """Paper-style grid with ours/paper interleaved per row."""
    headers = ["model", "training set"] + list(columns)
    if gains is not None:
        headers += ["prod gain", "schol gain"]
    widths = [max(14, len(h)) for h in headers]

    def fmt_row(cells):
        return " | ".join(str(c).ljust(w) for c, w in zip(cells, widths))

    lines = [title, fmt_row(headers), "-+-".join("-" * w for w in widths)]
    for (model, train_set), row in rows.items():
        reference = rows.get((model, reference_key))
        cells = [model, train_set]
        for col in columns:
            ref = reference[col] if (reference and train_set != reference_key) else None
            cells.append(format_delta(row[col], ref))
        if gains is not None:
            g = gains.get((model, train_set), (None, None))
            cells += [format_percent(g[0]), format_percent(g[1])]
        lines.append(fmt_row(cells))
        if paper_rows and (model, train_set) in paper_rows:
            p = paper_rows[(model, train_set)]
            pcells = ["", "  (paper)"] + [f"{p[c]:.2f}" for c in columns]
            if gains is not None:
                pg = (paper_gains or {}).get((model, train_set))
                pcells += (
                    [f"{pg[0]}%", f"{pg[1]}%"] if pg else ["-", "-"]
                )
            lines.append(fmt_row(pcells))
    return "\n".join(lines)


def render_size_table(
    title: str,
    sizes: Mapping[str, tuple[int, int, int]],
    paper_sizes: Mapping[str, tuple[int, int, int]] | None = None,
) -> str:
    """Table-4 style: name → (#pos, #neg, #total), ours vs paper."""
    lines = [title, f"{'training set':22s} | {'# pos':>7s} | {'# neg':>7s} | {'# total':>8s}"]
    lines.append("-" * len(lines[-1]))
    for name, (pos, neg, total) in sizes.items():
        lines.append(f"{name:22s} | {pos:7d} | {neg:7d} | {total:8d}")
        if paper_sizes and name in paper_sizes:
            ppos, pneg, ptotal = paper_sizes[name]
            lines.append(
                f"{'  (paper)':22s} | {ppos:7d} | {pneg:7d} | {ptotal:8d}"
            )
    return "\n".join(lines)
