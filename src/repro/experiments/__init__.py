"""Experiment drivers: one module per paper table/figure.

Each ``compute_*`` function runs the full experiment through the public
pipeline and returns plain dicts; ``render`` turns them into paper-style
tables with the paper's reported numbers alongside.  The benchmark harness
(``benchmarks/``) and the EXPERIMENTS.md generator both build on these.
"""

from repro.experiments.table2 import compute_table2
from repro.experiments.table3 import compute_table3
from repro.experiments.table45 import (
    compute_table4,
    compute_table5,
    training_set_variants,
)
from repro.experiments.sensitivity_study import compute_sensitivity_study
from repro.experiments.render import render_results_table

__all__ = [
    "compute_sensitivity_study",
    "compute_table2",
    "compute_table3",
    "compute_table4",
    "compute_table5",
    "render_results_table",
    "training_set_variants",
]
