"""Table 3: fine-tuning with explanation-augmented training sets."""

from __future__ import annotations

from repro.core.explanations import EXPLANATION_STYLES
from repro.core.finetuning import finetune_model, zero_shot_model
from repro.experiments.table2 import (
    EVAL_DATASETS,
    TRAINING_SETS,
    _f1_row,
    _gain,
    column_key,
)

__all__ = ["compute_table3", "SMALL_MODELS", "LARGE_MODELS"]

#: Models fine-tuned with every explanation style.
SMALL_MODELS = ("llama-3.1-8b", "gpt-4o-mini")
#: Models fine-tuned only with the consistently-best style (paper §4.1).
LARGE_MODELS = ("llama-3.1-70b", "gpt-4o")

#: Source training set for Dimension 1 (the paper uses WDC small).
SOURCE = "wdc-small"


def compute_table3() -> dict:
    """Run the explanation-representation grid.

    Rows per small model: zero-shot, standard WDC fine-tuning, and one row
    per explanation style; large models get zero-shot, standard and
    structured only.  Gains follow Table 2 semantics (in-domain transfer
    against the dataset-specialized Table-2 models).
    """
    rows: dict[tuple[str, str], dict[str, float]] = {}
    styles_for = {
        **{m: EXPLANATION_STYLES for m in SMALL_MODELS},
        **{m: ("structured",) for m in LARGE_MODELS},
    }

    for model_name, styles in styles_for.items():
        rows[(model_name, "zero-shot")] = _f1_row(zero_shot_model(model_name))
        rows[(model_name, SOURCE)] = _f1_row(finetune_model(model_name, SOURCE).model)
        for style in styles:
            outcome = finetune_model(
                model_name, SOURCE, explanation_style=style, tag=f"{SOURCE}+{style}"
            )
            rows[(model_name, style)] = _f1_row(outcome.model)

    gains: dict[tuple[str, str], tuple[float | None, float | None]] = {}
    for model_name, styles in styles_for.items():
        zero = rows[(model_name, "zero-shot")]
        if model_name in SMALL_MODELS:
            # specialized per-target models come from the Table-2 grid
            specialized = {
                column_key(t): _f1_row(finetune_model(model_name, t).model)
                for t in TRAINING_SETS[model_name]
            }
        else:
            specialized = {}
        for train_set in (SOURCE, *styles):
            row = rows[(model_name, train_set)]
            gains[(model_name, train_set)] = (
                _gain(row, zero, specialized, "product", SOURCE),
                _gain(row, zero, specialized, "scholar", SOURCE),
            )
    return {"rows": rows, "gains": gains}
