"""§3.3 prompt-sensitivity study.

Measures the standard deviation of F1 across the four prompts for the
zero-shot models and for the fine-tuned models, aggregated the way the
paper reports it: non-transfer (model evaluated on its source dataset),
in-domain transfer, and across all datasets.
"""

from __future__ import annotations

from statistics import mean

from repro.core.finetuning import finetune_model, zero_shot_model
from repro.core.sensitivity import prompt_sensitivity
from repro.datasets.registry import PRODUCT_DATASETS, SCHOLAR_DATASETS, dataset_domain

__all__ = ["compute_sensitivity_study"]

_ALL_DATASETS = list(PRODUCT_DATASETS) + list(SCHOLAR_DATASETS)


def compute_sensitivity_study(
    models: tuple[str, ...] = ("llama-3.1-8b", "gpt-4o-mini"),
    training_sets: tuple[str, ...] = ("wdc-small", "abt-buy", "dblp-acm"),
) -> dict:
    """Return per-model sensitivity aggregates, pre and post fine-tuning.

    ``{"zero-shot": {model: std}, "non-transfer": ..., "in-domain": ...,
    "all": ..., "ft_prompt_best_rate": ...}`` — stds are averaged over the
    relevant (training set, test set) scenarios.
    """
    zero_shot: dict[str, float] = {}
    non_transfer: dict[str, list[float]] = {m: [] for m in models}
    in_domain: dict[str, list[float]] = {m: [] for m in models}
    all_cases: dict[str, list[float]] = {m: [] for m in models}
    best_rate: dict[str, list[bool]] = {m: [] for m in models}

    for model_name in models:
        base = zero_shot_model(model_name)
        zero_shot[model_name] = mean(
            prompt_sensitivity(base, ds).std for ds in _ALL_DATASETS
        )
        for train_set in training_sets:
            tuned = finetune_model(model_name, train_set).model
            for ds in _ALL_DATASETS:
                sens = prompt_sensitivity(tuned, ds)
                all_cases[model_name].append(sens.std)
                best_rate[model_name].append(sens.finetuning_prompt_is_best)
                same_set = ds == train_set or (
                    train_set.startswith("wdc") and ds.startswith("wdc")
                )
                if same_set:
                    non_transfer[model_name].append(sens.std)
                elif dataset_domain(ds) == dataset_domain(train_set):
                    in_domain[model_name].append(sens.std)

    return {
        "zero-shot": zero_shot,
        "non-transfer": {m: mean(v) for m, v in non_transfer.items()},
        "in-domain": {m: mean(v) for m, v in in_domain.items()},
        "all": {m: mean(v) for m, v in all_cases.items()},
        "ft_prompt_best_rate": {
            m: sum(v) / len(v) for m, v in best_rate.items()
        },
    }
