"""Table 2: standard fine-tuning across models, training sets and test sets."""

from __future__ import annotations

from repro.core.finetuning import evaluate_on, finetune_model, zero_shot_model
from repro.core.transfer import domain_targets, transfer_gain
from repro.datasets.registry import SCHOLAR_DATASETS, dataset_domain

__all__ = ["compute_table2", "EVAL_DATASETS", "column_key"]

#: Test sets evaluated for every row (paper column order).
EVAL_DATASETS = [
    "abt-buy", "amazon-google", "walmart-amazon", "wdc-small",
    "dblp-acm", "dblp-scholar",
]

#: Training sets per model (larger models only fine-tune on WDC small).
TRAINING_SETS = {
    "llama-3.1-8b": ["abt-buy", "amazon-google", "walmart-amazon", "wdc-small",
                     "dblp-acm", "dblp-scholar"],
    "gpt-4o-mini": ["abt-buy", "amazon-google", "walmart-amazon", "wdc-small",
                    "dblp-acm", "dblp-scholar"],
    "llama-3.1-70b": ["wdc-small"],
    "gpt-4o": ["wdc-small"],
}


def column_key(dataset: str) -> str:
    """Paper column name for a dataset (WDC variants share one column)."""
    return "wdc" if dataset.startswith("wdc") else dataset


def _f1_row(model, datasets=EVAL_DATASETS) -> dict[str, float]:
    return {
        column_key(name): result.f1
        for name, result in evaluate_on(model, datasets).items()
    }


def compute_table2(
    models: list[str] | None = None,
) -> dict:
    """Run the full standard fine-tuning grid.

    Returns ``{"rows": {(model, trainset): {column: f1}},
    "gains": {(model, trainset): (product_gain, scholar_gain)}}`` where
    ``trainset`` includes a "zero-shot" row per model and gains are
    fractions (0.72 = 72%) or None where the paper leaves them undefined.
    """
    models = models or list(TRAINING_SETS)
    rows: dict[tuple[str, str], dict[str, float]] = {}

    for model_name in models:
        rows[(model_name, "zero-shot")] = _f1_row(zero_shot_model(model_name))
        for train_set in TRAINING_SETS[model_name]:
            outcome = finetune_model(model_name, train_set)
            rows[(model_name, train_set)] = _f1_row(outcome.model)

    gains: dict[tuple[str, str], tuple[float | None, float | None]] = {}
    for model_name in models:
        zero = rows[(model_name, "zero-shot")]
        # gains need the dataset-specialized models of the same persona
        specialized = {
            column_key(target): rows.get((model_name, target))
            for target in TRAINING_SETS[model_name]
        }
        for train_set in TRAINING_SETS[model_name]:
            row = rows[(model_name, train_set)]
            gains[(model_name, train_set)] = (
                _gain(row, zero, specialized, "product", train_set),
                _gain(row, zero, specialized, "scholar", train_set),
            )
    return {"rows": rows, "gains": gains}


def _gain(row, zero, specialized, domain, source) -> float | None:
    exclude = source if dataset_domain(source) == domain else None
    targets = domain_targets(domain, exclude=exclude)
    target_cols = [column_key(t) for t in targets]
    if any(specialized.get(c) is None for c in target_cols):
        return None  # larger models have no specialized target models
    return transfer_gain(
        {c: row[c] for c in target_cols},
        {c: zero[c] for c in target_cols},
        {c: specialized[c][c] for c in target_cols},
        target_cols,
    )


def scholar_columns() -> list[str]:
    return [column_key(d) for d in SCHOLAR_DATASETS]
