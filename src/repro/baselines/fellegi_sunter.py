"""Fellegi-Sunter probabilistic record linkage (1969).

The classical model: discretize each comparison feature into agreement
levels, estimate per-level m- and u-probabilities (P(level | match) and
P(level | non-match)) from labelled data, and score a pair by the sum of
log-likelihood ratios.  Pairs above a decision threshold are matches.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.schema import Split
from repro.eval.metrics import f1_score
from repro.llm.features import FEATURE_NAMES, featurize_pairs

__all__ = ["FellegiSunterMatcher"]

#: Default comparison vector: generic similarity signals.
DEFAULT_FEATURES = (
    "token_jaccard",
    "char3_cosine",
    "numeric_jaccard",
    "first_token_eq",
    "rare_token_overlap",
)

_LEVELS = 4  # agreement levels per feature
_SMOOTHING = 0.5  # Laplace smoothing of level counts


class FellegiSunterMatcher:
    """Classic log-likelihood-ratio matcher with quantized agreement levels."""

    def __init__(self, features: tuple[str, ...] = DEFAULT_FEATURES) -> None:
        unknown = [f for f in features if f not in FEATURE_NAMES]
        if unknown:
            raise ValueError(f"unknown features: {unknown}")
        self.features = features
        self._indices = [FEATURE_NAMES.index(f) for f in features]
        self._log_ratios: np.ndarray | None = None  # (n_features × levels)
        self.threshold = 0.0

    @staticmethod
    def _levels(values: np.ndarray) -> np.ndarray:
        """Quantize similarities in [0,1] into agreement levels."""
        return np.minimum((values * _LEVELS).astype(int), _LEVELS - 1)

    def fit(self, train: Split) -> "FellegiSunterMatcher":
        """Estimate m/u probabilities and the F1-optimal threshold."""
        phi = featurize_pairs(train.pairs)[:, self._indices]
        labels = np.array(train.labels(), dtype=bool)
        if not labels.any() or labels.all():
            raise ValueError("training split must contain both classes")
        levels = self._levels(phi)
        log_ratios = np.zeros((len(self.features), _LEVELS))
        for j in range(len(self.features)):
            for level in range(_LEVELS):
                m = np.sum(levels[labels, j] == level) + _SMOOTHING
                u = np.sum(levels[~labels, j] == level) + _SMOOTHING
                m_prob = m / (labels.sum() + _SMOOTHING * _LEVELS)
                u_prob = u / ((~labels).sum() + _SMOOTHING * _LEVELS)
                log_ratios[j, level] = np.log(m_prob / u_prob)
        self._log_ratios = log_ratios

        scores = self._score_levels(levels)
        best_threshold, best_f1 = 0.0, -1.0
        for candidate in np.unique(np.round(scores, 2)):
            f1 = f1_score(labels, scores >= candidate).f1
            if f1 > best_f1:
                best_f1, best_threshold = f1, float(candidate)
        self.threshold = best_threshold
        return self

    def _score_levels(self, levels: np.ndarray) -> np.ndarray:
        assert self._log_ratios is not None
        return sum(
            self._log_ratios[j, levels[:, j]] for j in range(len(self.features))
        )

    def scores(self, split: Split) -> np.ndarray:
        """Summed log-likelihood ratios for every pair."""
        if self._log_ratios is None:
            raise RuntimeError("matcher is not fitted; call fit() first")
        phi = featurize_pairs(split.pairs)[:, self._indices]
        return self._score_levels(self._levels(phi))

    def predict(self, split: Split) -> np.ndarray:
        return self.scores(split) >= self.threshold
