"""Classical entity-matching baselines.

The paper motivates LLMs against five decades of matching techniques
(Fellegi & Sunter 1969 onwards).  These reference implementations — a
similarity-threshold matcher and a Fellegi-Sunter probabilistic matcher —
give the library a non-LLM comparison point and a sanity floor for the
benchmarks.
"""

from repro.baselines.threshold import ThresholdMatcher
from repro.baselines.fellegi_sunter import FellegiSunterMatcher

__all__ = ["FellegiSunterMatcher", "ThresholdMatcher"]
