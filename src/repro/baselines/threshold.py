"""Similarity-threshold matcher.

Predicts "match" when a single string-similarity signal exceeds a
threshold; the threshold can be calibrated on a training split by maximum
F1.  The simplest credible baseline for the benchmarks.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.schema import Split
from repro.eval.metrics import f1_score
from repro.llm.features import FEATURE_NAMES, featurize_pairs

__all__ = ["ThresholdMatcher"]


class ThresholdMatcher:
    """Match when one similarity feature exceeds a threshold."""

    def __init__(self, feature: str = "char3_cosine", threshold: float = 0.5) -> None:
        if feature not in FEATURE_NAMES:
            raise ValueError(f"unknown feature {feature!r}")
        self.feature = feature
        self.threshold = threshold
        self._index = FEATURE_NAMES.index(feature)

    def scores(self, split: Split) -> np.ndarray:
        return featurize_pairs(split.pairs)[:, self._index]

    def predict(self, split: Split) -> np.ndarray:
        return self.scores(split) >= self.threshold

    def fit(self, train: Split) -> "ThresholdMatcher":
        """Pick the F1-maximizing threshold on *train* (in place)."""
        scores = self.scores(train)
        labels = np.array(train.labels(), dtype=bool)
        best_threshold, best_f1 = self.threshold, -1.0
        for candidate in np.unique(np.round(scores, 3)):
            f1 = f1_score(labels, scores >= candidate).f1
            if f1 > best_f1:
                best_f1, best_threshold = f1, float(candidate)
        self.threshold = best_threshold
        return self
