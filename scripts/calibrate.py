"""Calibration diagnostics: oracle learnability + persona zero-shot levels."""
import time
import numpy as np
from repro.datasets import load_dataset
from repro.llm.features import featurize_pairs
from repro.eval.metrics import f1_score
from repro.llm.prior import _fit_logistic

t0 = time.perf_counter()
names = ["abt-buy", "amazon-google", "walmart-amazon", "wdc-small", "dblp-acm", "dblp-scholar"]

print("== oracle: logistic regression on raw features, own train -> test ==")
for n in names:
    ds = load_dataset(n)
    Xtr = featurize_pairs(ds.train.pairs); ytr = np.array(ds.train.labels(), float)
    Xte = featurize_pairs(ds.test.pairs);  yte = np.array(ds.test.labels(), bool)
    w = _fit_logistic(Xtr, ytr, l2=1e-4, epochs=3000, lr=2.0, seed=1)
    s = f1_score(yte, Xte @ w > 0)
    print(f"{n:16s} oracle F1={s.f1:5.1f}  P={s.precision:5.1f} R={s.recall:5.1f}  ({time.perf_counter()-t0:.0f}s)")
