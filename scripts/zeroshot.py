"""Zero-shot persona calibration table."""
import time
import numpy as np
from repro.llm.model import build_model
from repro.datasets import load_dataset
from repro.eval.evaluator import evaluate_model

t0 = time.perf_counter()
names = ["abt-buy", "amazon-google", "walmart-amazon", "wdc-small", "dblp-acm", "dblp-scholar"]
targets = {
    "llama-3.1-8b":  [56.6, 49.2, 42.0, 53.4, 85.5, 67.7],
    "llama-3.1-70b": [79.1, 51.4, 55.6, 75.2, 80.5, 69.5],
    "gpt-4o-mini":   [87.7, 59.2, 65.1, 81.6, 94.2, 88.0],
    "gpt-4o":        [92.2, 63.5, 70.7, 81.6, 87.2, 74.6],
}
datasets = {n: load_dataset(n) for n in names}
print(f"datasets {time.perf_counter()-t0:.0f}s")
print(f"{'persona':14s} " + " ".join(f"{n[:9]:>11s}" for n in names))
for persona, tgt in targets.items():
    model = build_model(persona)
    row = []
    for n, t in zip(names, tgt):
        r = evaluate_model(model, datasets[n].test)
        row.append(f"{r.f1:5.1f}/{t:5.1f}")
    print(f"{persona:14s} " + " ".join(row) + f"  {time.perf_counter()-t0:.0f}s")
