#!/usr/bin/env python
"""Quantify reproduction quality: sign agreement of fine-tuning deltas.

For every fine-tuned cell of Table 2, compares the sign of the
reproduction's (fine-tuned − zero-shot) delta with the paper's.  Writes
results/agreement_scorecard.txt.
"""

from __future__ import annotations

from pathlib import Path

from repro.experiments.table2 import compute_table2
from repro.paper_reference import TABLE2

ROOT = Path(__file__).resolve().parent.parent


def main() -> None:
    result = compute_table2()
    rows = result["rows"]

    agree = total = 0
    big_agree = big_total = 0
    lines = ["Agreement scorecard: sign of (fine-tuned - zero-shot) deltas, Table 2", ""]
    for (model, train_set), row in rows.items():
        if train_set == "zero-shot" or (model, train_set) not in TABLE2:
            continue
        ours_zero = rows[(model, "zero-shot")]
        paper_zero = TABLE2[(model, "zero-shot")]
        paper_row = TABLE2[(model, train_set)]
        for column in row:
            ours_delta = row[column] - ours_zero[column]
            paper_delta = paper_row[column] - paper_zero[column]
            match = (ours_delta >= 0) == (paper_delta >= 0)
            total += 1
            agree += match
            if abs(paper_delta) >= 3.0:  # deltas the paper would call real
                big_total += 1
                big_agree += match
                if not match:
                    lines.append(
                        f"  sign mismatch: {model}/{train_set} on {column}: "
                        f"ours {ours_delta:+.1f} vs paper {paper_delta:+.1f}"
                    )
    lines.insert(1, f"all cells:           {agree}/{total} signs agree "
                    f"({agree / total:.0%})")
    lines.insert(2, f"|paper delta| >= 3:  {big_agree}/{big_total} signs agree "
                    f"({big_agree / big_total:.0%})")
    text = "\n".join(lines)
    print(text)
    (ROOT / "results" / "agreement_scorecard.txt").write_text(text + "\n")


if __name__ == "__main__":
    main()
